package i8051

import "fmt"

// Asm is a tiny single-pass 8051 program builder with label fix-ups: enough
// to write the test and benchmark firmware in readable form without an
// external assembler.
type Asm struct {
	code   []byte
	labels map[string]uint16
	fixups []fixup
}

type fixup struct {
	at    int // byte position to patch
	label string
	kind  byte // 'r' = rel8 (relative to at+1), 'h'/'l' = addr16 halves
}

// NewAsm returns an empty program builder.
func NewAsm() *Asm {
	return &Asm{labels: map[string]uint16{}}
}

// emit appends raw bytes.
func (a *Asm) emit(bs ...byte) *Asm {
	a.code = append(a.code, bs...)
	return a
}

// PC returns the current assembly position.
func (a *Asm) PC() uint16 { return uint16(len(a.code)) }

// Label defines a label at the current position.
func (a *Asm) Label(name string) *Asm {
	a.labels[name] = a.PC()
	return a
}

// Org pads with NOPs up to the given address (for interrupt vectors).
func (a *Asm) Org(addr uint16) *Asm {
	for uint16(len(a.code)) < addr {
		a.emit(0x00)
	}
	return a
}

// Assemble resolves fix-ups and returns the program image.
func (a *Asm) Assemble() []byte {
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			panic(fmt.Sprintf("i8051: undefined label %q", f.label))
		}
		switch f.kind {
		case 'r':
			disp := int(target) - (f.at + 1)
			if disp < -128 || disp > 127 {
				panic(fmt.Sprintf("i8051: rel jump to %q out of range (%d)", f.label, disp))
			}
			a.code[f.at] = byte(int8(disp))
		case 'h':
			a.code[f.at] = byte(target >> 8)
		case 'l':
			a.code[f.at] = byte(target)
		}
	}
	out := make([]byte, len(a.code))
	copy(out, a.code)
	return out
}

// relTo records a rel8 fix-up at the next byte.
func (a *Asm) relTo(label string) *Asm {
	a.fixups = append(a.fixups, fixup{at: len(a.code), label: label, kind: 'r'})
	return a.emit(0)
}

// addr16To records an addr16 fix-up at the next two bytes.
func (a *Asm) addr16To(label string) *Asm {
	a.fixups = append(a.fixups,
		fixup{at: len(a.code), label: label, kind: 'h'},
		fixup{at: len(a.code) + 1, label: label, kind: 'l'})
	return a.emit(0, 0)
}

// --- instructions (named after their mnemonics) ---

func (a *Asm) Nop() *Asm                { return a.emit(0x00) }
func (a *Asm) MovAImm(v byte) *Asm      { return a.emit(0x74, v) }
func (a *Asm) MovADir(d byte) *Asm      { return a.emit(0xE5, d) }
func (a *Asm) MovDirA(d byte) *Asm      { return a.emit(0xF5, d) }
func (a *Asm) MovDirImm(d, v byte) *Asm { return a.emit(0x75, d, v) }
func (a *Asm) MovDirDir(dst, src byte) *Asm {
	return a.emit(0x85, src, dst)
}
func (a *Asm) MovRImm(n int, v byte) *Asm { return a.emit(0x78|byte(n), v) }
func (a *Asm) MovRA(n int) *Asm           { return a.emit(0xF8 | byte(n)) }
func (a *Asm) MovAR(n int) *Asm           { return a.emit(0xE8 | byte(n)) }
func (a *Asm) MovRDir(n int, d byte) *Asm { return a.emit(0xA8|byte(n), d) }
func (a *Asm) MovDirR(d byte, n int) *Asm { return a.emit(0x88|byte(n), d) }
func (a *Asm) MovAtRiA(i int) *Asm        { return a.emit(0xF6 | byte(i&1)) }
func (a *Asm) MovAAtRi(i int) *Asm        { return a.emit(0xE6 | byte(i&1)) }
func (a *Asm) MovDPTR(v uint16) *Asm      { return a.emit(0x90, byte(v>>8), byte(v)) }
func (a *Asm) MovCAtADPTR() *Asm          { return a.emit(0x93) }
func (a *Asm) MovxADPTR() *Asm            { return a.emit(0xE0) }
func (a *Asm) MovxDPTRA() *Asm            { return a.emit(0xF0) }
func (a *Asm) IncA() *Asm                 { return a.emit(0x04) }
func (a *Asm) IncDir(d byte) *Asm         { return a.emit(0x05, d) }
func (a *Asm) IncR(n int) *Asm            { return a.emit(0x08 | byte(n)) }
func (a *Asm) IncDPTR() *Asm              { return a.emit(0xA3) }
func (a *Asm) DecA() *Asm                 { return a.emit(0x14) }
func (a *Asm) DecR(n int) *Asm            { return a.emit(0x18 | byte(n)) }
func (a *Asm) AddAImm(v byte) *Asm        { return a.emit(0x24, v) }
func (a *Asm) AddADir(d byte) *Asm        { return a.emit(0x25, d) }
func (a *Asm) AddAR(n int) *Asm           { return a.emit(0x28 | byte(n)) }
func (a *Asm) AddcAImm(v byte) *Asm       { return a.emit(0x34, v) }
func (a *Asm) SubbAImm(v byte) *Asm       { return a.emit(0x94, v) }
func (a *Asm) SubbAR(n int) *Asm          { return a.emit(0x98 | byte(n)) }
func (a *Asm) AnlAImm(v byte) *Asm        { return a.emit(0x54, v) }
func (a *Asm) OrlAImm(v byte) *Asm        { return a.emit(0x44, v) }
func (a *Asm) XrlAImm(v byte) *Asm        { return a.emit(0x64, v) }
func (a *Asm) ClrA() *Asm                 { return a.emit(0xE4) }
func (a *Asm) CplA() *Asm                 { return a.emit(0xF4) }
func (a *Asm) SwapA() *Asm                { return a.emit(0xC4) }
func (a *Asm) RlA() *Asm                  { return a.emit(0x23) }
func (a *Asm) RrA() *Asm                  { return a.emit(0x03) }
func (a *Asm) RlcA() *Asm                 { return a.emit(0x33) }
func (a *Asm) RrcA() *Asm                 { return a.emit(0x13) }
func (a *Asm) DaA() *Asm                  { return a.emit(0xD4) }
func (a *Asm) MulAB() *Asm                { return a.emit(0xA4) }
func (a *Asm) DivAB() *Asm                { return a.emit(0x84) }
func (a *Asm) XchADir(d byte) *Asm        { return a.emit(0xC5, d) }
func (a *Asm) XchAR(n int) *Asm           { return a.emit(0xC8 | byte(n)) }
func (a *Asm) PushDir(d byte) *Asm        { return a.emit(0xC0, d) }
func (a *Asm) PopDir(d byte) *Asm         { return a.emit(0xD0, d) }
func (a *Asm) ClrC() *Asm                 { return a.emit(0xC3) }
func (a *Asm) SetbC() *Asm                { return a.emit(0xD3) }
func (a *Asm) CplC() *Asm                 { return a.emit(0xB3) }
func (a *Asm) SetbBit(bit byte) *Asm      { return a.emit(0xD2, bit) }
func (a *Asm) ClrBit(bit byte) *Asm       { return a.emit(0xC2, bit) }
func (a *Asm) CplBit(bit byte) *Asm       { return a.emit(0xB2, bit) }
func (a *Asm) MovCBit(bit byte) *Asm      { return a.emit(0xA2, bit) }
func (a *Asm) MovBitC(bit byte) *Asm      { return a.emit(0x92, bit) }
func (a *Asm) Ret() *Asm                  { return a.emit(0x22) }
func (a *Asm) Reti() *Asm                 { return a.emit(0x32) }

func (a *Asm) Sjmp(label string) *Asm { return a.emit(0x80).relTo(label) }
func (a *Asm) Jz(label string) *Asm   { return a.emit(0x60).relTo(label) }
func (a *Asm) Jnz(label string) *Asm  { return a.emit(0x70).relTo(label) }
func (a *Asm) Jc(label string) *Asm   { return a.emit(0x40).relTo(label) }
func (a *Asm) Jnc(label string) *Asm  { return a.emit(0x50).relTo(label) }
func (a *Asm) Jb(bit byte, label string) *Asm {
	return a.emit(0x20, bit).relTo(label)
}
func (a *Asm) Jnb(bit byte, label string) *Asm {
	return a.emit(0x30, bit).relTo(label)
}
func (a *Asm) Jbc(bit byte, label string) *Asm {
	return a.emit(0x10, bit).relTo(label)
}
func (a *Asm) Ljmp(label string) *Asm  { return a.emit(0x02).addr16To(label) }
func (a *Asm) Lcall(label string) *Asm { return a.emit(0x12).addr16To(label) }
func (a *Asm) DjnzR(n int, label string) *Asm {
	return a.emit(0xD8 | byte(n)).relTo(label)
}
func (a *Asm) DjnzDir(d byte, label string) *Asm {
	return a.emit(0xD5, d).relTo(label)
}
func (a *Asm) CjneAImm(v byte, label string) *Asm {
	return a.emit(0xB4, v).relTo(label)
}
func (a *Asm) CjneRImm(n int, v byte, label string) *Asm {
	return a.emit(0xB8|byte(n), v).relTo(label)
}

// Halt emits the conventional SJMP-to-self halt.
func (a *Asm) Halt() *Asm {
	a.Label(fmt.Sprintf("_halt%d", len(a.code)))
	return a.emit(0x80, 0xFE)
}
