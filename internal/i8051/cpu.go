// Package i8051 is a complete instruction-set simulator of the Intel 8051
// micro-controller: all 255 defined opcodes, banked registers, bit
// addressing, the PSW flag model (CY/AC/OV/P), internal RAM, SFRs, external
// data memory, interrupt vectoring, and standard machine-cycle counts.
//
// In the reproduction it plays the role of the "ISS level" that the paper's
// conclusion compares RTOS-level co-simulation against: the same hardware
// platform simulated cycle by cycle, orders of magnitude slower than
// executing the embedded software as host code with annotated timing. The
// Machine type couples the CPU to the sysc simulation clock (one event per
// instruction, advancing simulated time by its cycle count).
package i8051

import "fmt"

// SFR direct addresses used by the core.
const (
	SfrP0   = 0x80
	SfrSP   = 0x81
	SfrDPL  = 0x82
	SfrDPH  = 0x83
	SfrPCON = 0x87
	SfrTCON = 0x88
	SfrP1   = 0x90
	SfrSCON = 0x98
	SfrSBUF = 0x99
	SfrP2   = 0xA0
	SfrIE   = 0xA8
	SfrP3   = 0xB0
	SfrIP   = 0xB8
	SfrPSW  = 0xD0
	SfrACC  = 0xE0
	SfrB    = 0xF0
)

// PSW flag bit positions.
const (
	FlagP   = 0 // parity (of ACC, hardware-maintained)
	FlagOV  = 2 // overflow
	FlagRS0 = 3
	FlagRS1 = 4
	FlagAC  = 6 // auxiliary carry
	FlagCY  = 7 // carry
)

// Interrupt vector addresses.
const (
	VecReset  = 0x0000
	VecINT0   = 0x0003
	VecTimer0 = 0x000B
	VecINT1   = 0x0013
	VecTimer1 = 0x001B
	VecSerial = 0x0023
)

// XRAMBus abstracts external data memory (MOVX target). The BFM's memory
// controller satisfies it, so the ISS can share the co-simulation's XRAM.
type XRAMBus interface {
	Read(addr uint16) byte
	Write(addr uint16, v byte)
}

// sliceXRAM is a plain in-process XRAM.
type sliceXRAM []byte

func (m sliceXRAM) Read(a uint16) byte { return m[int(a)%len(m)] }
func (m sliceXRAM) Write(a uint16, v byte) {
	m[int(a)%len(m)] = v
}

// CPU is the 8051 core state.
type CPU struct {
	Code []byte    // program memory (up to 64 KiB)
	IRAM [256]byte // internal RAM: 0x00-0x7F direct+indirect, 0x80-0xFF indirect-only
	SFR  [128]byte // special function registers, direct addresses 0x80-0xFF
	XRAM XRAMBus

	PC     uint16
	Cycles uint64 // machine cycles executed
	Instrs uint64 // instructions executed

	Halted bool // set by SJMP self-loop detection (convenience for tests)

	// PortOut, if set, observes SFR writes to P0..P3 (co-sim hook).
	PortOut func(port int, v byte)
	// SerialOut, if set, observes writes to SBUF.
	SerialOut func(v byte)

	pendingIRQ []uint16 // queued interrupt vectors
}

// New creates a CPU with the given program at address 0 and 64 KiB of
// private XRAM.
func New(program []byte) *CPU {
	c := &CPU{Code: make([]byte, 0x10000), XRAM: make(sliceXRAM, 0x10000)}
	copy(c.Code, program)
	c.Reset()
	return c
}

// Reset puts the core in its power-on state.
func (c *CPU) Reset() {
	c.PC = VecReset
	for i := range c.SFR {
		c.SFR[i] = 0
	}
	c.SFR[SfrSP-0x80] = 0x07
	for i := range c.IRAM {
		c.IRAM[i] = 0
	}
	c.Cycles, c.Instrs = 0, 0
	c.Halted = false
	c.pendingIRQ = nil
}

// --- register accessors ---

// A returns the accumulator.
func (c *CPU) A() byte { return c.SFR[SfrACC-0x80] }

// SetA writes the accumulator and maintains the parity flag.
func (c *CPU) SetA(v byte) {
	c.SFR[SfrACC-0x80] = v
	c.updParity()
}

// B returns the B register.
func (c *CPU) B() byte { return c.SFR[SfrB-0x80] }

// SetB writes the B register.
func (c *CPU) SetB(v byte) { c.SFR[SfrB-0x80] = v }

// PSW returns the program status word.
func (c *CPU) PSW() byte { return c.SFR[SfrPSW-0x80] }

// SP returns the stack pointer.
func (c *CPU) SP() byte { return c.SFR[SfrSP-0x80] }

// DPTR returns the 16-bit data pointer.
func (c *CPU) DPTR() uint16 {
	return uint16(c.SFR[SfrDPH-0x80])<<8 | uint16(c.SFR[SfrDPL-0x80])
}

// SetDPTR writes the data pointer.
func (c *CPU) SetDPTR(v uint16) {
	c.SFR[SfrDPH-0x80] = byte(v >> 8)
	c.SFR[SfrDPL-0x80] = byte(v)
}

// flag reads one PSW bit.
func (c *CPU) flag(bit int) bool { return c.PSW()&(1<<bit) != 0 }

// setFlag writes one PSW bit.
func (c *CPU) setFlag(bit int, on bool) {
	if on {
		c.SFR[SfrPSW-0x80] |= 1 << bit
	} else {
		c.SFR[SfrPSW-0x80] &^= 1 << bit
	}
}

// CY returns the carry flag.
func (c *CPU) CY() bool { return c.flag(FlagCY) }

// regBase returns the IRAM base of the active register bank.
func (c *CPU) regBase() byte { return (c.PSW() >> 3) & 0x03 << 3 }

// R reads register Rn of the active bank.
func (c *CPU) R(n int) byte { return c.IRAM[c.regBase()+byte(n)] }

// SetR writes register Rn of the active bank.
func (c *CPU) SetR(n int, v byte) { c.IRAM[c.regBase()+byte(n)] = v }

// updParity maintains PSW.P = odd parity of ACC (set when ACC has an odd
// number of ones).
func (c *CPU) updParity() {
	v := c.A()
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	c.setFlag(FlagP, v&1 != 0)
}

// --- direct/indirect/bit address spaces ---

// readDirect reads a direct address: 0x00-0x7F IRAM, 0x80-0xFF SFR.
func (c *CPU) readDirect(addr byte) byte {
	if addr < 0x80 {
		return c.IRAM[addr]
	}
	return c.SFR[addr-0x80]
}

// writeDirect writes a direct address, with port/serial observers and
// parity maintenance for ACC.
func (c *CPU) writeDirect(addr byte, v byte) {
	if addr < 0x80 {
		c.IRAM[addr] = v
		return
	}
	c.SFR[addr-0x80] = v
	switch addr {
	case SfrACC:
		c.updParity()
	case SfrP0, SfrP1, SfrP2, SfrP3:
		if c.PortOut != nil {
			c.PortOut(int(addr-SfrP0)>>4, v)
		}
	case SfrSBUF:
		if c.SerialOut != nil {
			c.SerialOut(v)
		}
	}
}

// readIndirect reads @Ri: the full 256-byte IRAM (upper half is
// indirect-only on the 8052; modelled here).
func (c *CPU) readIndirect(addr byte) byte { return c.IRAM[addr] }

// writeIndirect writes @Ri.
func (c *CPU) writeIndirect(addr byte, v byte) { c.IRAM[addr] = v }

// bitAddr resolves a bit address to (direct byte address, bit index):
// 0x00-0x7F map to IRAM 0x20-0x2F; 0x80-0xFF map to bit-addressable SFRs.
func bitAddr(bit byte) (addr byte, idx uint) {
	if bit < 0x80 {
		return 0x20 + bit/8, uint(bit % 8)
	}
	return bit &^ 0x07, uint(bit % 8)
}

// readBit reads one bit of the bit-address space.
func (c *CPU) readBit(bit byte) bool {
	addr, idx := bitAddr(bit)
	return c.readDirect(addr)&(1<<idx) != 0
}

// writeBit writes one bit of the bit-address space.
func (c *CPU) writeBit(bit byte, on bool) {
	addr, idx := bitAddr(bit)
	v := c.readDirect(addr)
	if on {
		v |= 1 << idx
	} else {
		v &^= 1 << idx
	}
	c.writeDirect(addr, v)
}

// --- stack ---

func (c *CPU) push(v byte) {
	sp := c.SP() + 1
	c.SFR[SfrSP-0x80] = sp
	c.IRAM[sp] = v
}

func (c *CPU) pop() byte {
	sp := c.SP()
	v := c.IRAM[sp]
	c.SFR[SfrSP-0x80] = sp - 1
	return v
}

// pushPC pushes the PC low byte first (8051 call convention).
func (c *CPU) pushPC() {
	c.push(byte(c.PC))
	c.push(byte(c.PC >> 8))
}

func (c *CPU) popPC() {
	hi := c.pop()
	lo := c.pop()
	c.PC = uint16(hi)<<8 | uint16(lo)
}

// --- interrupts ---

// RaiseIRQ queues an interrupt vector; it is taken before the next
// instruction if IE.EA and the corresponding source behaviour is assumed
// enabled (the simulator models vectoring, not the IE source matrix, which
// the surrounding BFM already arbitrates).
func (c *CPU) RaiseIRQ(vector uint16) {
	c.pendingIRQ = append(c.pendingIRQ, vector)
}

// takeIRQ vectors to a pending interrupt if the global enable bit is set.
func (c *CPU) takeIRQ() bool {
	if len(c.pendingIRQ) == 0 {
		return false
	}
	if c.SFR[SfrIE-0x80]&0x80 == 0 { // EA
		return false
	}
	vec := c.pendingIRQ[0]
	c.pendingIRQ = c.pendingIRQ[1:]
	c.pushPC()
	c.PC = vec
	c.Cycles += 2 // LCALL-equivalent latency
	return true
}

// fetch reads the next code byte.
func (c *CPU) fetch() byte {
	v := c.Code[c.PC]
	c.PC++
	return v
}

// rel applies a signed 8-bit displacement to the PC.
func (c *CPU) rel(d byte) { c.PC = uint16(int32(c.PC) + int32(int8(d))) }

// String summarizes the core state.
func (c *CPU) String() string {
	return fmt.Sprintf("PC=%04x A=%02x B=%02x PSW=%02x SP=%02x DPTR=%04x cyc=%d",
		c.PC, c.A(), c.B(), c.PSW(), c.SP(), c.DPTR(), c.Cycles)
}
