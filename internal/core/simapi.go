package core

import (
	"fmt"
	"io"
	"repro/internal/petri"
	"sort"

	"repro/internal/event"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// SimAPI is the simulation library of Section 4: the set of programming
// constructs an RTOS kernel simulation model uses to control T-THREAD
// operation. It extends the sysc engine with dispatching, delayed
// dispatching, service-call atomicity, preemption, interrupts and nested
// interrupt handling, keeps the thread registry (SIM_HashTB) and the nested
// interrupt stack (SIM_Stack), and interacts directly with an external
// scheduler to pick the next T-THREAD to run.
//
// Mapping to the paper's API table (Table 1):
//
//	SIM_CreateThread  -> CreateThread
//	SIM_StartThread   -> Activate
//	SIM_Wait          -> (*TThread).Consume
//	SIM_Sleep         -> BlockCurrent
//	SIM_Wakeup        -> Release
//	SIM_Preempt       -> RequestDispatch (scheduler-driven)
//	SIM_IntEnter      -> EnterInterrupt
//	SIM_IntReturn     -> implicit on handler-body return
//	SIM_LockDisp      -> LockDispatch / UnlockDispatch
//	SIM_RotRdq        -> RotateReady
//	SIM_HashTB        -> Threads / Lookup / LookupByName
//	SIM_Gantt         -> Bus (KindRunSlice -> trace.AttachGantt)
//	SIM_EnergyStat    -> EnergyReport
type SimAPI struct {
	sim   *sysc.Simulator
	sched Scheduler
	bus   *event.Bus

	table  map[int]*TThread // SIM_HashTB
	order  []*TThread
	byProc map[*sysc.Thread]*TThread
	byCoro map[*sysc.Coro]*TThread // continuation-engine threads
	nextID int

	current *TThread   // the RUNNING task (nil when the CPU idles)
	istack  []*TThread // SIM_Stack: nested interrupt/time-event handlers

	dispatchLocked  int  // nesting count: service-call atomicity, tk_dis_dsp
	pendingDispatch bool // delayed dispatching latch

	busy sysc.Time // total CPU busy time (all threads)

	// Statistics.
	ctxSwitches uint64
	preemptions uint64
	interrupts  uint64
	maxIStack   int

	// consumeShaper, if set, transforms every Consume cost before it is
	// spent (the chaos ETM-inflation hook: per-basic-block execution-time
	// perturbation). It must be deterministic for reproducible runs. This is
	// an intervention hook, not observation — it stays outside the bus, and
	// it is frozen at construction (WithConsumeShaper) so concurrent
	// simulations can never race on it.
	consumeShaper func(t *TThread, c Cost, ctx trace.Context) Cost

	// elog/elogSub: the attached kernel-dynamics recorder and its bus
	// subscription (SetEventLog).
	elog    *EventLog
	elogSub *event.Subscription
}

// Option configures a SimAPI instance at construction. Intervention hooks
// are options (not setters) so an instance's instrumentation is immutable
// once it exists — a hard requirement for serving concurrent jobs.
type Option func(*SimAPI)

// WithConsumeShaper installs a cost transformer applied to every Consume
// call before the budget is spent — the fault-injection hook for
// execution-time inflation (a miscalibrated ETM, cache pollution, DVFS
// throttling). The shaper sees the consuming thread and the execution
// context and returns the perturbed cost; it must be deterministic.
func WithConsumeShaper(fn func(t *TThread, c Cost, ctx trace.Context) Cost) Option {
	return func(a *SimAPI) { a.consumeShaper = fn }
}

// NewSimAPI creates the library bound to a sysc simulator, an external
// scheduler and an event bus. All observation — run slices, token
// transitions, kernel dynamics — is published on the bus; pass nil to have
// the library create a private one (events then flow to whoever subscribes
// via Bus()).
func NewSimAPI(sim *sysc.Simulator, sched Scheduler, bus *event.Bus, opts ...Option) *SimAPI {
	if bus == nil {
		bus = event.NewBus()
	}
	a := &SimAPI{
		sim:    sim,
		sched:  sched,
		bus:    bus,
		table:  map[int]*TThread{},
		byProc: map[*sysc.Thread]*TThread{},
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Sim returns the underlying sysc simulator.
func (a *SimAPI) Sim() *sysc.Simulator { return a.sim }

// Bus returns the kernel event bus the library publishes on. Never nil.
func (a *SimAPI) Bus() *event.Bus { return a.bus }

// publish emits a kernel-dynamics event about thread t (nil for the kernel
// itself). It is a no-op bitmask test when nobody subscribed to the kind;
// callers that must format obj guard with Wants themselves.
func (a *SimAPI) publish(k event.Kind, t *TThread, obj string) {
	if !a.bus.Wants(k) {
		return
	}
	name := ""
	if t != nil {
		name = t.name
	}
	a.bus.Publish(event.Event{Kind: k, Time: a.sim.Now(), Thread: name, Obj: obj})
}

// --- SIM_HashTB: thread registry ---

// CreateThread registers a new T-THREAD in the dormant state
// (SIM_CreateThread). The body runs once per activation cycle.
func (a *SimAPI) CreateThread(name string, kind Kind, priority int, body func(*TThread)) *TThread {
	a.nextID++
	t := &TThread{
		api:          a,
		id:           a.nextID,
		name:         name,
		kind:         kind,
		body:         body,
		priority:     priority,
		basePriority: priority,
		state:        StateDormant,
		net:          newTThreadNet(name),
	}
	t.seq = petri.NewFiringSequence(t.net)
	t.dispatchEv = a.sim.NewEvent(name + ".dispatch")
	t.preemptEv = a.sim.NewEvent(name + ".preempt")
	a.table[t.id] = t
	a.order = append(a.order, t)
	t.th = a.sim.Spawn("tthread."+name, t.run)
	a.byProc[t.th] = t
	return t
}

// DeleteThread removes a dormant thread from the registry (tk_del_tsk).
func (a *SimAPI) DeleteThread(t *TThread) error {
	if t.state != StateDormant {
		return fmt.Errorf("core: delete %q: thread not dormant (%v)", t.name, t.state)
	}
	t.state = StateNonExistent
	delete(a.table, t.id)
	if t.th != nil {
		delete(a.byProc, t.th)
	}
	if t.co != nil {
		delete(a.byCoro, t.co)
	}
	for i, x := range a.order {
		if x == t {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
	return nil
}

// Lookup returns the registered thread with the given ID, or nil.
func (a *SimAPI) Lookup(id int) *TThread { return a.table[id] }

// LookupByName returns the first registered thread with the given name.
func (a *SimAPI) LookupByName(name string) *TThread {
	for _, t := range a.order {
		if t.name == name {
			return t
		}
	}
	return nil
}

// Threads returns all registered threads in creation order.
func (a *SimAPI) Threads() []*TThread {
	out := make([]*TThread, len(a.order))
	copy(out, a.order)
	return out
}

// Current returns the RUNNING task (nil when idle).
func (a *SimAPI) Current() *TThread { return a.current }

// CPUOwner returns the thread executing right now: the top of the interrupt
// stack, or the current task.
func (a *SimAPI) CPUOwner() *TThread {
	if n := len(a.istack); n > 0 {
		return a.istack[n-1]
	}
	return a.current
}

// ExecutingThread returns the T-THREAD whose body is executing on the
// calling goroutine right now, or nil when kernel code runs in a plain
// simulation process (central module, interrupt dispatch, boot). Kernel
// layers use it to attribute service-call costs to the calling task safely.
func (a *SimAPI) ExecutingThread() *TThread {
	if cur := a.sim.CurrentThread(); cur != nil {
		return a.byProc[cur]
	}
	if co := a.sim.CurrentCoro(); co != nil {
		return a.byCoro[co]
	}
	return nil
}

// InHandler reports whether a handler-level context is active.
func (a *SimAPI) InHandler() bool { return len(a.istack) > 0 }

// InterruptDepth returns the current interrupt nesting level.
func (a *SimAPI) InterruptDepth() int { return len(a.istack) }

// --- dispatching ---

// LockDispatch disables task dispatching (service-call atomicity and
// tk_dis_dsp). Locks nest.
func (a *SimAPI) LockDispatch() { a.dispatchLocked++ }

// UnlockDispatch re-enables dispatching; a latched (delayed) dispatch is
// performed when the last lock is released outside handler context.
func (a *SimAPI) UnlockDispatch() {
	if a.dispatchLocked == 0 {
		panic("core: UnlockDispatch without matching LockDispatch")
	}
	a.dispatchLocked--
	if a.dispatchLocked == 0 && len(a.istack) == 0 && a.pendingDispatch {
		a.dispatch()
	}
}

// DispatchLocked reports whether task dispatching is currently disabled.
func (a *SimAPI) DispatchLocked() bool { return a.dispatchLocked > 0 }

// DispatchPending reports whether a delayed dispatch is latched, waiting for
// the dispatch lock or handler nest to clear. Invariant oracles use it to
// recognize (and skip) transient scheduling windows.
func (a *SimAPI) DispatchPending() bool { return a.pendingDispatch }

// ReadyCount returns the number of threads the external scheduler holds
// (the READY population; the RUNNING thread is never kept in the queue).
func (a *SimAPI) ReadyCount() int { return a.sched.Len() }

// RequestDispatch asks the library to reconsider which task should run.
// While dispatching is locked or a handler is active the request is latched
// (delayed dispatching) and performed when the lock/handler context ends.
func (a *SimAPI) RequestDispatch() {
	if a.dispatchLocked > 0 || len(a.istack) > 0 {
		a.pendingDispatch = true
		return
	}
	a.dispatch()
}

// dispatch performs the context switch decision: if the scheduler's pick
// must displace the current task, the current task is preempted (returned
// to the head of its precedence class, asked to yield at its next
// preemption point) and the pick becomes RUNNING.
func (a *SimAPI) dispatch() {
	a.pendingDispatch = false
	next := a.sched.Peek()
	if next == nil {
		return
	}
	if cur := a.current; cur != nil {
		if !a.sched.ShouldPreempt(cur, next) {
			return
		}
		a.preemptions++
		if a.bus.Wants(event.KindPreempt) {
			a.publish(event.KindPreempt, cur, "by "+next.name)
		}
		cur.pauseFire()
		cur.state = StateReady
		a.current = nil
		a.sched.EnqueueFront(cur)
		cur.preemptEv.Notify()
		// Re-pick: the preempted task re-entered the queue.
		next = a.sched.Peek()
	}
	a.sched.Dequeue(next)
	a.switchTo(next)
}

// switchTo gives the CPU to t at task level.
func (a *SimAPI) switchTo(t *TThread) {
	a.ctxSwitches++
	t.state = StateRunning
	a.current = t
	a.publish(event.KindDispatch, t, "")
	t.resumeFire()
	t.dispatchEv.Notify()
}

// --- activation, exit, termination ---

// Activate starts a dormant thread (SIM_StartThread / tk_sta_tsk): it
// becomes READY and a dispatch is requested.
func (a *SimAPI) Activate(t *TThread) error {
	if t.state != StateDormant {
		return fmt.Errorf("core: activate %q: not dormant (%v)", t.name, t.state)
	}
	t.state = StateReady
	t.relCode = nil
	t.hasPendingRel = false
	a.publish(event.KindActivate, t, "")
	a.sched.Enqueue(t)
	a.RequestDispatch()
	return nil
}

// threadExited handles a task body returning (tk_ext_tsk): the thread goes
// dormant, the CPU is released and the next task is dispatched.
func (a *SimAPI) threadExited(t *TThread) {
	if t.kind.HandlerLevel() {
		a.exitHandler(t)
		return
	}
	a.publish(event.KindExit, t, "")
	// The body may return while the thread is READY (preempted at the very
	// last instant, e.g. by the task it just woke); it exits regardless.
	a.sched.Dequeue(t)
	t.terminateFire()
	t.state = StateDormant
	t.suspCount = 0
	if a.current == t {
		a.current = nil
	}
	if t.actCount > 0 {
		t.actCount--
		t.state = StateReady
		a.sched.Enqueue(t)
	}
	a.RequestDispatch()
}

// QueueActivation records an additional activation request against an
// active task (ITRON act_tsk queuing semantics); the task re-activates
// when it exits.
func (a *SimAPI) QueueActivation(t *TThread) { t.actCount++ }

// UnqueueActivation cancels one queued activation request (ITRON can_act).
func (a *SimAPI) UnqueueActivation(t *TThread) {
	if t.actCount > 0 {
		t.actCount--
	}
}

// QueuedActivations returns the number of pending activation requests.
func (a *SimAPI) QueuedActivations(t *TThread) int { return t.actCount }

// Terminate forcibly moves a non-dormant thread to DORMANT (tk_ter_tsk).
// The thread's body is unwound at its next preemption point (or instantly
// if it is parked waiting for the CPU).
func (a *SimAPI) Terminate(t *TThread) error {
	switch t.state {
	case StateDormant, StateNonExistent:
		return fmt.Errorf("core: terminate %q: not active (%v)", t.name, t.state)
	}
	wasCurrent := a.current == t
	a.publish(event.KindTerminate, t, "")
	if t.tokenPlace() != plDormant {
		// The body is mid-cycle somewhere: request an unwind.
		t.terminated = true
	}
	t.terminateFire()
	a.sched.Dequeue(t)
	t.state = StateDormant
	t.suspCount = 0
	t.waitObj = ""
	t.hasPendingRel = false
	if wasCurrent {
		a.current = nil
	}
	// Wake the body wherever it is parked so the reset can propagate.
	t.preemptEv.Notify()
	t.dispatchEv.Notify()
	if wasCurrent {
		a.RequestDispatch()
	}
	return nil
}

// terminateFire moves the Petri-net token to dormant from wherever it is.
func (t *TThread) terminateFire() {
	switch t.tokenPlace() {
	case plRunning:
		t.fire(trXt, Cost{})
	case plReady:
		t.fire(trTmR, Cost{})
	case plWaiting:
		t.fire(trTmW, Cost{})
	}
}

// --- waiting (the Ew sleep event) ---

// BlockCurrent is SIM_Sleep: the calling task voluntarily enters WAITING on
// the named object and the CPU is handed to the scheduler's next pick. The
// call returns when the task is released and dispatched again; the returned
// error is the release code passed to Release (nil for a normal wakeup).
//
// Must be called from a task body with dispatching unlocked and no handler
// active (kernel layers enforce E_CTX). The caller may have been scheduled
// out in the zero-time window since it decided to block (e.g. it woke a
// higher-priority thread first): it re-acquires the CPU, and a release that
// arrived in that window (latched by Release) completes the wait instantly.
func (a *SimAPI) BlockCurrent(waitObj string) error {
	t := a.ExecutingThread()
	if t == nil {
		panic("core: BlockCurrent from a non-T-THREAD context")
	}
	if len(a.istack) > 0 {
		panic("core: BlockCurrent from handler context")
	}
	t.waitForCPU()
	if t.hasPendingRel {
		t.hasPendingRel = false
		return t.pendingRel
	}
	t.state = StateWaiting
	t.waitObj = waitObj
	t.relCode = nil
	a.publish(event.KindBlock, t, waitObj)
	t.fire(trEw, Cost{})
	a.current = nil
	a.RequestDispatch()
	t.waitForCPU()
	return t.relCode
}

// Release is SIM_Wakeup: a waiting thread's sleep event has arrived. The
// thread becomes READY (or SUSPENDED if it was also forcibly suspended) and
// a dispatch is requested. code is delivered as BlockCurrent's return value
// (nil = normal wakeup; kernels pass E_TMOUT, E_RLWAI, E_DLT...).
//
// A READY/RUNNING target is a thread caught in the zero-time window between
// deciding to block and reaching BlockCurrent (it may have been preempted
// by the very thread it woke): the release is latched and completes the
// imminent BlockCurrent immediately, so no wakeup is ever lost. Release
// reports false only for dormant/non-existent targets.
func (a *SimAPI) Release(t *TThread, code error) bool {
	switch t.state {
	case StateWaiting:
		t.state = StateReady
		t.relCode = code
		t.waitObj = ""
		if a.bus.Wants(event.KindRelease) {
			detail := "normal"
			if code != nil {
				detail = code.Error()
			}
			a.publish(event.KindRelease, t, detail)
		}
		t.fire(trWk, Cost{})
		a.sched.Enqueue(t)
		a.RequestDispatch()
		return true
	case StateWaitSuspended:
		t.state = StateSuspended
		t.relCode = code
		t.waitObj = ""
		t.fire(trWk, Cost{})
		return true
	case StateReady, StateRunning:
		t.pendingRel = code
		t.hasPendingRel = true
		return true
	}
	return false
}

// --- forced suspension (tk_sus_tsk / tk_rsm_tsk) ---

// SuspendForce forcibly suspends a thread; suspensions nest.
func (a *SimAPI) SuspendForce(t *TThread) error {
	a.publish(event.KindSuspend, t, "")
	switch t.state {
	case StateRunning:
		t.pauseFire()
		t.state = StateSuspended
		t.suspCount = 1
		if a.current == t {
			a.current = nil
		}
		t.preemptEv.Notify()
		a.RequestDispatch()
	case StateReady:
		a.sched.Dequeue(t)
		t.state = StateSuspended
		t.suspCount = 1
	case StateWaiting:
		t.state = StateWaitSuspended
		t.suspCount = 1
	case StateSuspended, StateWaitSuspended:
		t.suspCount++
	default:
		return fmt.Errorf("core: suspend %q: not active (%v)", t.name, t.state)
	}
	return nil
}

// ResumeForce undoes one forced suspension; the thread resumes READY (or
// WAITING) when the count reaches zero.
func (a *SimAPI) ResumeForce(t *TThread) error {
	a.publish(event.KindResume, t, "")
	switch t.state {
	case StateSuspended:
		t.suspCount--
		if t.suspCount <= 0 {
			t.suspCount = 0
			t.state = StateReady
			a.sched.Enqueue(t)
			a.RequestDispatch()
		}
	case StateWaitSuspended:
		t.suspCount--
		if t.suspCount <= 0 {
			t.suspCount = 0
			t.state = StateWaiting
		}
	default:
		return fmt.Errorf("core: resume %q: not suspended (%v)", t.name, t.state)
	}
	return nil
}

// --- priority and ready-queue manipulation ---

// ChangePriority sets the thread's base priority and re-queues it if ready
// (tk_chg_pri). A dispatch is requested so the change takes effect.
func (a *SimAPI) ChangePriority(t *TThread, prio int) {
	t.basePriority = prio
	a.SetEffectivePriority(t, prio)
}

// SetEffectivePriority adjusts the scheduling priority without touching the
// base priority (mutex priority inheritance / ceiling).
func (a *SimAPI) SetEffectivePriority(t *TThread, prio int) {
	if t.priority == prio {
		return
	}
	if t.state == StateReady {
		a.sched.Dequeue(t)
		t.priority = prio
		a.sched.Enqueue(t)
	} else {
		t.priority = prio
	}
	a.RequestDispatch()
}

// RotateReady rotates the precedence class of the given priority
// (tk_rot_rdq; time slicing in round-robin kernels).
func (a *SimAPI) RotateReady(priority int) {
	a.sched.Rotate(priority)
	a.RequestDispatch()
}

// YieldCurrent sends the current task to the tail of its precedence class
// and dispatches (round-robin time slice expiry).
func (a *SimAPI) YieldCurrent() {
	cur := a.current
	if cur == nil {
		return
	}
	cur.pauseFire()
	cur.state = StateReady
	a.current = nil
	a.sched.Enqueue(cur)
	cur.preemptEv.Notify()
	a.RequestDispatch()
}

// --- interrupts and time-event handlers (SIM_Stack) ---

// EnterInterrupt activates a handler-level T-THREAD: the CPU owner is asked
// to pause at its next preemption point, the handler is pushed on the
// interrupt stack and dispatched. Nested calls model nested interrupts.
// Activating a handler that is still running reports an overrun error.
func (a *SimAPI) EnterInterrupt(h *TThread) error {
	if !h.kind.HandlerLevel() {
		return fmt.Errorf("core: %q is not a handler-level thread", h.name)
	}
	if h.state != StateDormant {
		return fmt.Errorf("core: handler %q overrun: still %v", h.name, h.state)
	}
	a.interrupts++
	if a.bus.Wants(event.KindIntEnter) {
		a.bus.Publish(event.Event{Kind: event.KindIntEnter, Time: a.sim.Now(),
			Thread: h.name, Seq: uint64(len(a.istack) + 1)})
	}
	if owner := a.CPUOwner(); owner != nil {
		owner.pauseFire()
		owner.preemptEv.Notify()
	}
	a.istack = append(a.istack, h)
	if len(a.istack) > a.maxIStack {
		a.maxIStack = len(a.istack)
	}
	h.state = StateRunning
	h.resumeFire()
	h.dispatchEv.Notify()
	return nil
}

// exitHandler completes a handler cycle: pop the interrupt stack, resume
// the interrupted context, and perform any delayed dispatch once the stack
// empties (the paper's delayed-dispatching rule).
func (a *SimAPI) exitHandler(h *TThread) {
	a.publish(event.KindIntExit, h, "")
	h.fire(trXt, Cost{})
	h.state = StateDormant
	if n := len(a.istack); n == 0 || a.istack[n-1] != h {
		panic(fmt.Sprintf("core: handler %q exits out of order", h.name))
	}
	a.istack = a.istack[:len(a.istack)-1]
	if n := len(a.istack); n > 0 {
		// Resume the interrupted lower-level handler (Ei).
		top := a.istack[n-1]
		top.resumeFire()
		top.dispatchEv.Notify()
		return
	}
	// Back at task level: honour a delayed dispatch first.
	if a.pendingDispatch && a.dispatchLocked == 0 {
		a.dispatch()
	}
	if cur := a.current; cur != nil {
		// Resume the interrupted task (Ei).
		cur.resumeFire()
		cur.dispatchEv.Notify()
	}
}

// --- statistics and reports ---

// ContextSwitches returns the number of task-level dispatches performed.
func (a *SimAPI) ContextSwitches() uint64 { return a.ctxSwitches }

// Preemptions returns the number of task preemptions performed.
func (a *SimAPI) Preemptions() uint64 { return a.preemptions }

// Interrupts returns the number of handler activations.
func (a *SimAPI) Interrupts() uint64 { return a.interrupts }

// MaxInterruptDepth returns the deepest interrupt nesting observed.
func (a *SimAPI) MaxInterruptDepth() int { return a.maxIStack }

// BusyTime returns total CPU busy time across all threads.
func (a *SimAPI) BusyTime() sysc.Time { return a.busy }

// TotalCEE returns the total consumed energy across all threads.
func (a *SimAPI) TotalCEE() Energy {
	var sum Energy
	for _, t := range a.order {
		sum += t.CEE()
	}
	return sum
}

// EnergyReport writes the per-thread consumed time/energy distribution: the
// data behind the paper's Time/Energy distribution widget (Figure 7).
// Threads are listed in creation order with their share of the totals.
func (a *SimAPI) EnergyReport(w io.Writer) {
	totalT := a.busy
	totalE := a.TotalCEE()
	fmt.Fprintf(w, "%-14s %-8s %14s %8s %14s %8s %8s\n",
		"THREAD", "KIND", "CET", "CET%", "CEE", "CEE%", "CYCLES")
	threads := make([]*TThread, len(a.order))
	copy(threads, a.order)
	sort.SliceStable(threads, func(i, j int) bool { return threads[i].CEE() > threads[j].CEE() })
	for _, t := range threads {
		pt, pe := 0.0, 0.0
		if totalT > 0 {
			pt = 100 * float64(t.CET()) / float64(totalT)
		}
		if totalE > 0 {
			pe = 100 * t.CEE().Joules() / totalE.Joules()
		}
		fmt.Fprintf(w, "%-14s %-8s %14s %7.1f%% %14s %7.1f%% %8d\n",
			t.Name(), t.Kind(), t.CET(), pt, t.CEE(), pe, t.Cycles())
	}
	fmt.Fprintf(w, "%-14s %-8s %14s %8s %14s\n", "TOTAL", "", totalT, "", totalE)
}
