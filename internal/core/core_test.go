package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/petri"
	"repro/internal/sched"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// rig wires a sysc simulator, a priority scheduler, an event bus, a GANTT
// recorder and the SIM_API library together for tests.
type rig struct {
	sim *sysc.Simulator
	api *core.SimAPI
	bus *event.Bus
	g   *trace.Gantt
}

func newRigWith(s core.Scheduler) *rig {
	sim := sysc.NewSimulator()
	bus := event.NewBus()
	event.AttachSimulator(bus, sim)
	g := trace.NewGantt()
	trace.AttachGantt(bus, g)
	return &rig{sim: sim, api: core.NewSimAPI(sim, s, bus), bus: bus, g: g}
}

func newRig() *rig { return newRigWith(sched.NewPriority()) }

func newRRRig() *rig { return newRigWith(sched.NewRoundRobin()) }

func cost(d sysc.Time, e core.Energy) core.Cost { return core.Cost{Time: d, Energy: e} }

func (r *rig) mustRun(t *testing.T, until sysc.Time) {
	t.Helper()
	if err := r.sim.Start(until); err != nil {
		t.Fatal(err)
	}
}

func TestTaskLifecycle(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	var ran int
	task := r.api.CreateThread("t1", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(5*sysc.Ms, 2*petri.MilliJ), trace.CtxTask, "work")
		ran++
	})
	if task.State() != core.StateDormant {
		t.Fatalf("initial state %v", task.State())
	}
	if err := r.api.Activate(task); err != nil {
		t.Fatal(err)
	}
	r.mustRun(t, 100*sysc.Ms)
	if ran != 1 {
		t.Fatalf("body ran %d times", ran)
	}
	if task.State() != core.StateDormant {
		t.Fatalf("state after exit %v", task.State())
	}
	if task.CET() != 5*sysc.Ms {
		t.Fatalf("CET = %v", task.CET())
	}
	if task.CEE() != 2*petri.MilliJ {
		t.Fatalf("CEE = %v", task.CEE())
	}
	if task.Cycles() != 1 {
		t.Fatalf("cycles = %d", task.Cycles())
	}
	// Re-activation runs another cycle (cyclic object).
	if err := r.api.Activate(task); err != nil {
		t.Fatal(err)
	}
	r.mustRun(t, 200*sysc.Ms)
	if ran != 2 || task.Cycles() != 2 {
		t.Fatalf("ran=%d cycles=%d", ran, task.Cycles())
	}
}

func TestActivateNonDormantFails(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	task := r.api.CreateThread("t1", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(10*sysc.Ms, 0), trace.CtxTask, "")
	})
	_ = r.api.Activate(task)
	r.mustRun(t, 2*sysc.Ms) // mid-execution
	if err := r.api.Activate(task); err == nil {
		t.Fatal("double activation should fail")
	}
}

func TestPriorityPreemption(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	var bStart, bEnd, aEnd sysc.Time
	a := r.api.CreateThread("low", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(10*sysc.Ms, 10*petri.MilliJ), trace.CtxTask, "low-work")
		aEnd = tt.Sim().Now()
	})
	b := r.api.CreateThread("high", core.KindTask, 5, func(tt *core.TThread) {
		bStart = tt.Sim().Now()
		tt.Consume(cost(5*sysc.Ms, 5*petri.MilliJ), trace.CtxTask, "high-work")
		bEnd = tt.Sim().Now()
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(3 * sysc.Ms)
		if err := r.api.Activate(b); err != nil {
			panic(err)
		}
	})
	r.mustRun(t, sysc.Sec)
	if bStart != 3*sysc.Ms || bEnd != 8*sysc.Ms {
		t.Fatalf("high ran %v..%v, want 3..8 ms", bStart, bEnd)
	}
	if aEnd != 15*sysc.Ms {
		t.Fatalf("low finished at %v, want 15 ms", aEnd)
	}
	if a.CET() != 10*sysc.Ms || b.CET() != 5*sysc.Ms {
		t.Fatalf("CET a=%v b=%v", a.CET(), b.CET())
	}
	if r.api.Preemptions() != 1 {
		t.Fatalf("preemptions = %d", r.api.Preemptions())
	}
	if _, _, overlap := r.g.CheckNoOverlap(); overlap {
		t.Fatal("GANTT segments overlap on a single CPU")
	}
	// Energy was charged pro rata: low got 3/10 then 7/10.
	if diff := a.CEE().Joules() - (10 * petri.MilliJ).Joules(); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("low CEE = %v", a.CEE())
	}
}

func TestEqualPriorityDoesNotPreempt(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	var order []string
	mk := func(name string) *core.TThread {
		return r.api.CreateThread(name, core.KindTask, 10, func(tt *core.TThread) {
			tt.Consume(cost(5*sysc.Ms, 0), trace.CtxTask, "")
			order = append(order, name)
		})
	}
	a, b := mk("a"), mk("b")
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(1 * sysc.Ms)
		_ = r.api.Activate(b)
	})
	r.mustRun(t, sysc.Sec)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v (same priority must be FIFO, no preemption)", order)
	}
	_ = b
}

func TestPreemptedTaskKeepsPrecedence(t *testing.T) {
	// A preempted task goes to the HEAD of its priority class: after the
	// high-priority task finishes, the preempted one resumes before a peer
	// that became ready later.
	r := newRig()
	defer r.sim.Shutdown()
	var order []string
	note := func(name string) { order = append(order, name) }
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(10*sysc.Ms, 0), trace.CtxTask, "")
		note("a")
	})
	peer := r.api.CreateThread("peer", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(1*sysc.Ms, 0), trace.CtxTask, "")
		note("peer")
	})
	hi := r.api.CreateThread("hi", core.KindTask, 1, func(tt *core.TThread) {
		tt.Consume(cost(2*sysc.Ms, 0), trace.CtxTask, "")
		note("hi")
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(3 * sysc.Ms)
		_ = r.api.Activate(peer) // joins ready queue behind nothing
		_ = r.api.Activate(hi)   // preempts a -> a goes to head, before peer
	})
	r.mustRun(t, sysc.Sec)
	want := "hi,a,peer"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("completion order %q, want %q", got, want)
	}
}

func TestDispatchLockDefersPreemption(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	var bStart sysc.Time
	a := r.api.CreateThread("svc", core.KindTask, 10, func(tt *core.TThread) {
		// Service-call atomicity: consume under dispatch lock.
		r.api.LockDispatch()
		tt.Consume(cost(10*sysc.Ms, 0), trace.CtxService, "atomic-service")
		r.api.UnlockDispatch()
		tt.Consume(cost(5*sysc.Ms, 0), trace.CtxTask, "")
	})
	b := r.api.CreateThread("hi", core.KindTask, 1, func(tt *core.TThread) {
		bStart = tt.Sim().Now()
		tt.Consume(cost(1*sysc.Ms, 0), trace.CtxTask, "")
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(2 * sysc.Ms)
		_ = r.api.Activate(b) // would preempt, but dispatch is locked
	})
	r.mustRun(t, sysc.Sec)
	if bStart != 10*sysc.Ms {
		t.Fatalf("high started at %v, want 10 ms (after the atomic service)", bStart)
	}
}

func TestBlockAndRelease(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	var wokeAt sysc.Time
	var relCode error
	a := r.api.CreateThread("sleeper", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(1*sysc.Ms, 0), trace.CtxTask, "")
		relCode = r.api.BlockCurrent("semaphore#1")
		wokeAt = tt.Sim().Now()
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(5 * sysc.Ms)
		if a.State() != core.StateWaiting {
			panic("task should be WAITING")
		}
		if a.WaitObject() != "semaphore#1" {
			panic("wait object not recorded")
		}
		r.api.Release(a, nil)
	})
	r.mustRun(t, sysc.Sec)
	if wokeAt != 5*sysc.Ms {
		t.Fatalf("woke at %v", wokeAt)
	}
	if relCode != nil {
		t.Fatalf("release code = %v", relCode)
	}
	if a.State() != core.StateDormant {
		t.Fatalf("final state %v", a.State())
	}
}

func TestReleaseDeliversCode(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	sentinel := &testError{"E_TMOUT"}
	var got error
	a := r.api.CreateThread("sleeper", core.KindTask, 10, func(tt *core.TThread) {
		got = r.api.BlockCurrent("flag#2")
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(2 * sysc.Ms)
		r.api.Release(a, sentinel)
	})
	r.mustRun(t, sysc.Sec)
	if got != sentinel {
		t.Fatalf("release code = %v", got)
	}
}

type testError struct{ s string }

func (e *testError) Error() string { return e.s }

func TestReleaseNonWaitingReturnsFalse(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	a := r.api.CreateThread("t", core.KindTask, 10, func(tt *core.TThread) {})
	if r.api.Release(a, nil) {
		t.Fatal("release of dormant thread should report false")
	}
}

func TestInterruptPausesTask(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	var taskEnd, isrStart, isrEnd sysc.Time
	task := r.api.CreateThread("task", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(10*sysc.Ms, 0), trace.CtxTask, "")
		taskEnd = tt.Sim().Now()
	})
	isr := r.api.CreateThread("isr", core.KindISR, 0, func(tt *core.TThread) {
		isrStart = tt.Sim().Now()
		tt.Consume(cost(2*sysc.Ms, 0), trace.CtxHandler, "irq0")
		isrEnd = tt.Sim().Now()
	})
	_ = r.api.Activate(task)
	r.sim.Spawn("intc", func(th *sysc.Thread) {
		th.Wait(4 * sysc.Ms)
		if err := r.api.EnterInterrupt(isr); err != nil {
			panic(err)
		}
	})
	r.mustRun(t, sysc.Sec)
	if isrStart != 4*sysc.Ms || isrEnd != 6*sysc.Ms {
		t.Fatalf("isr ran %v..%v", isrStart, isrEnd)
	}
	if taskEnd != 12*sysc.Ms {
		t.Fatalf("task finished at %v, want 12 ms (10 + 2 borrowed)", taskEnd)
	}
	if _, _, overlap := r.g.CheckNoOverlap(); overlap {
		t.Fatal("GANTT overlap")
	}
	if r.api.Interrupts() != 1 {
		t.Fatalf("interrupts = %d", r.api.Interrupts())
	}
}

func TestNestedInterrupts(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	var ends []sysc.Time
	task := r.api.CreateThread("task", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(20*sysc.Ms, 0), trace.CtxTask, "")
		ends = append(ends, tt.Sim().Now())
	})
	low := r.api.CreateThread("isr-low", core.KindISR, 2, func(tt *core.TThread) {
		tt.Consume(cost(6*sysc.Ms, 0), trace.CtxHandler, "")
		ends = append(ends, tt.Sim().Now())
	})
	high := r.api.CreateThread("isr-high", core.KindISR, 1, func(tt *core.TThread) {
		tt.Consume(cost(2*sysc.Ms, 0), trace.CtxHandler, "")
		ends = append(ends, tt.Sim().Now())
	})
	_ = r.api.Activate(task)
	r.sim.Spawn("intc", func(th *sysc.Thread) {
		th.Wait(5 * sysc.Ms)
		_ = r.api.EnterInterrupt(low)
		th.Wait(2 * sysc.Ms) // low has run 2 of 6 ms
		_ = r.api.EnterInterrupt(high)
	})
	r.mustRun(t, sysc.Sec)
	// high: 7..9; low: 5..7 then 9..13; task: 0..5 then 13..28.
	if len(ends) != 3 {
		t.Fatalf("ends = %v", ends)
	}
	if ends[0] != 9*sysc.Ms {
		t.Fatalf("high ended at %v, want 9 ms", ends[0])
	}
	if ends[1] != 13*sysc.Ms {
		t.Fatalf("low ended at %v, want 13 ms", ends[1])
	}
	if ends[2] != 28*sysc.Ms {
		t.Fatalf("task ended at %v, want 28 ms", ends[2])
	}
	if r.api.MaxInterruptDepth() != 2 {
		t.Fatalf("max interrupt depth = %d", r.api.MaxInterruptDepth())
	}
	if _, _, overlap := r.g.CheckNoOverlap(); overlap {
		t.Fatal("GANTT overlap")
	}
}

func TestDelayedDispatching(t *testing.T) {
	// A dispatch raised inside an interrupt handler (waking a high-priority
	// task) is postponed until the handler returns.
	r := newRig()
	defer r.sim.Shutdown()
	var hiStart sysc.Time
	lo := r.api.CreateThread("lo", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(20*sysc.Ms, 0), trace.CtxTask, "")
	})
	hi := r.api.CreateThread("hi", core.KindTask, 1, func(tt *core.TThread) {
		hiStart = tt.Sim().Now()
		tt.Consume(cost(1*sysc.Ms, 0), trace.CtxTask, "")
	})
	isr := r.api.CreateThread("isr", core.KindISR, 0, func(tt *core.TThread) {
		// Wake the high-priority task from handler context...
		_ = r.api.Activate(hi)
		if r.api.Current() == hi {
			panic("dispatch must be delayed inside a handler")
		}
		// ...then keep running: dispatch must wait for handler return.
		tt.Consume(cost(3*sysc.Ms, 0), trace.CtxHandler, "")
	})
	_ = r.api.Activate(lo)
	r.sim.Spawn("intc", func(th *sysc.Thread) {
		th.Wait(5 * sysc.Ms)
		_ = r.api.EnterInterrupt(isr)
	})
	r.mustRun(t, sysc.Sec)
	if hiStart != 8*sysc.Ms {
		t.Fatalf("hi started at %v, want 8 ms (interrupt entry 5 + handler 3)", hiStart)
	}
}

func TestHandlerOverrunRejected(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	isr := r.api.CreateThread("isr", core.KindISR, 0, func(tt *core.TThread) {
		tt.Consume(cost(10*sysc.Ms, 0), trace.CtxHandler, "")
	})
	var second error
	r.sim.Spawn("intc", func(th *sysc.Thread) {
		th.Wait(1 * sysc.Ms)
		_ = r.api.EnterInterrupt(isr)
		th.Wait(2 * sysc.Ms)
		second = r.api.EnterInterrupt(isr) // still running: overrun
	})
	r.mustRun(t, sysc.Sec)
	if second == nil {
		t.Fatal("re-entering a running handler must fail")
	}
}

func TestEnterInterruptRejectsTask(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	task := r.api.CreateThread("t", core.KindTask, 5, func(tt *core.TThread) {})
	if err := r.api.EnterInterrupt(task); err == nil {
		t.Fatal("EnterInterrupt must reject task-kind threads")
	}
}

func TestSuspendResume(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	var end sysc.Time
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(10*sysc.Ms, 0), trace.CtxTask, "")
		end = tt.Sim().Now()
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(3 * sysc.Ms)
		_ = r.api.SuspendForce(a)
		if a.State() != core.StateSuspended {
			panic("not suspended")
		}
		_ = r.api.SuspendForce(a) // nest
		th.Wait(5 * sysc.Ms)
		_ = r.api.ResumeForce(a)
		if a.State() != core.StateSuspended {
			panic("nested suspension should persist")
		}
		th.Wait(2 * sysc.Ms)
		_ = r.api.ResumeForce(a)
	})
	r.mustRun(t, sysc.Sec)
	// Ran 0..3, suspended 3..10, resumed at 10, remaining 7 -> ends 17.
	if end != 17*sysc.Ms {
		t.Fatalf("end = %v, want 17 ms", end)
	}
}

func TestSuspendWaitingTask(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	var woke sysc.Time
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		_ = r.api.BlockCurrent("mbx#1")
		woke = tt.Sim().Now()
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(1 * sysc.Ms)
		_ = r.api.SuspendForce(a)
		if a.State() != core.StateWaitSuspended {
			panic("state should be WAITING-SUSPENDED")
		}
		th.Wait(1 * sysc.Ms)
		r.api.Release(a, nil) // wait ends, still suspended
		if a.State() != core.StateSuspended {
			panic("state should be SUSPENDED after release")
		}
		th.Wait(3 * sysc.Ms)
		_ = r.api.ResumeForce(a)
	})
	r.mustRun(t, sysc.Sec)
	if woke != 5*sysc.Ms {
		t.Fatalf("woke at %v, want 5 ms", woke)
	}
}

func TestTerminateRunning(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	finished := false
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(100*sysc.Ms, 0), trace.CtxTask, "")
		finished = true
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(5 * sysc.Ms)
		if err := r.api.Terminate(a); err != nil {
			panic(err)
		}
	})
	r.mustRun(t, sysc.Sec)
	if finished {
		t.Fatal("terminated body must not complete")
	}
	if a.State() != core.StateDormant {
		t.Fatalf("state %v", a.State())
	}
	if a.CET() != 5*sysc.Ms {
		t.Fatalf("CET = %v (partial run before terminate)", a.CET())
	}
	// The thread is reusable after termination.
	if err := r.api.Activate(a); err != nil {
		t.Fatal(err)
	}
	r.mustRun(t, 2*sysc.Sec)
	if !finished {
		t.Fatal("reactivated thread should complete")
	}
}

func TestTerminateWaiting(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		_ = r.api.BlockCurrent("sem#9")
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(2 * sysc.Ms)
		if err := r.api.Terminate(a); err != nil {
			panic(err)
		}
	})
	r.mustRun(t, sysc.Sec)
	if a.State() != core.StateDormant {
		t.Fatalf("state %v", a.State())
	}
	if a.WaitObject() != "" {
		t.Fatal("wait object should be cleared")
	}
}

func TestTerminateDormantFails(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {})
	if err := r.api.Terminate(a); err == nil {
		t.Fatal("terminating a dormant thread must fail")
	}
}

func TestChangePriorityPreempts(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	var order []string
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(10*sysc.Ms, 0), trace.CtxTask, "")
		order = append(order, "a")
	})
	b := r.api.CreateThread("b", core.KindTask, 20, func(tt *core.TThread) {
		tt.Consume(cost(5*sysc.Ms, 0), trace.CtxTask, "")
		order = append(order, "b")
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(1 * sysc.Ms)
		_ = r.api.Activate(b) // lower priority: stays ready
		th.Wait(1 * sysc.Ms)
		r.api.ChangePriority(b, 5) // now outranks a: preempts
	})
	r.mustRun(t, sysc.Sec)
	if strings.Join(order, ",") != "b,a" {
		t.Fatalf("order %v", order)
	}
	if b.BasePriority() != 5 || b.Priority() != 5 {
		t.Fatalf("priority %d/%d", b.Priority(), b.BasePriority())
	}
}

func TestEffectivePriorityKeepsBase(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {})
	r.api.SetEffectivePriority(a, 3)
	if a.Priority() != 3 || a.BasePriority() != 10 {
		t.Fatalf("effective=%d base=%d", a.Priority(), a.BasePriority())
	}
}

func TestRoundRobinRotation(t *testing.T) {
	r := newRRRig()
	defer r.sim.Shutdown()
	var slices []string
	mk := func(name string) *core.TThread {
		return r.api.CreateThread(name, core.KindTask, 0, func(tt *core.TThread) {
			for i := 0; i < 2; i++ {
				tt.Consume(cost(1*sysc.Ms, 0), trace.CtxTask, "")
				slices = append(slices, name)
			}
		})
	}
	a, b := mk("a"), mk("b")
	_ = r.api.Activate(a)
	_ = r.api.Activate(b)
	// Time-slice rotation every 1 ms, like RTK-Spec I on a tick.
	r.sim.Spawn("tick", func(th *sysc.Thread) {
		for i := 0; i < 10; i++ {
			th.Wait(1 * sysc.Ms)
			r.api.YieldCurrent()
		}
	})
	r.mustRun(t, 20*sysc.Ms)
	got := strings.Join(slices, ",")
	if got != "a,b,a,b" {
		t.Fatalf("slices = %q, want round-robin a,b,a,b", got)
	}
}

func TestQueuedActivation(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	runs := 0
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(2*sysc.Ms, 0), trace.CtxTask, "")
		runs++
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(1 * sysc.Ms)
		r.api.QueueActivation(a) // queued while running
	})
	r.mustRun(t, sysc.Sec)
	if runs != 2 {
		t.Fatalf("runs = %d, want 2 (queued activation)", runs)
	}
}

func TestDeleteThread(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {})
	id := a.ID()
	if err := r.api.DeleteThread(a); err != nil {
		t.Fatal(err)
	}
	if r.api.Lookup(id) != nil {
		t.Fatal("deleted thread still in registry")
	}
	if a.State() != core.StateNonExistent {
		t.Fatalf("state %v", a.State())
	}
	b := r.api.CreateThread("b", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(2*sysc.Ms, 0), trace.CtxTask, "")
	})
	_ = r.api.Activate(b)
	r.mustRun(t, 1*sysc.Ms) // mid-execution
	if err := r.api.DeleteThread(b); err == nil {
		t.Fatal("delete of a running thread should fail")
	}
}

func TestPetriNetTokenInvariant(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(4*sysc.Ms, 0), trace.CtxTask, "")
		_ = r.api.BlockCurrent("x")
		tt.Consume(cost(4*sysc.Ms, 0), trace.CtxTask, "")
	})
	b := r.api.CreateThread("b", core.KindTask, 5, func(tt *core.TThread) {
		tt.Consume(cost(2*sysc.Ms, 0), trace.CtxTask, "")
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(2 * sysc.Ms)
		_ = r.api.Activate(b)
		th.Wait(5 * sysc.Ms) // a blocks at 6 ms; release strictly after
		r.api.Release(a, nil)
	})
	r.mustRun(t, sysc.Sec)
	for _, tt := range r.api.Threads() {
		if got := tt.Net().TotalTokens(); got != 1 {
			t.Fatalf("thread %s: token count %d", tt.Name(), got)
		}
	}
	// a's last cycle fired: Es, Ec(4ms), Ew, wakeup, Ex, Ec(4ms), exit and
	// one pause/Ex pair from b's preemption.
	cv := a.CharacteristicVector()
	sum := 0
	for _, v := range cv {
		sum += v
	}
	if sum < 7 {
		t.Fatalf("characteristic vector %v too short", cv)
	}
}

func TestEnergyReportAndGantt(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(5*sysc.Ms, 5*petri.MilliJ), trace.CtxTask, "step")
	})
	_ = r.api.Activate(a)
	r.mustRun(t, 10*sysc.Ms)
	var sb strings.Builder
	r.api.EnergyReport(&sb)
	out := sb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "TOTAL") {
		t.Fatalf("energy report missing rows:\n%s", out)
	}
	if r.api.BusyTime() != 5*sysc.Ms {
		t.Fatalf("busy = %v", r.api.BusyTime())
	}
	if len(r.g.Segments) == 0 {
		t.Fatal("no GANTT segments recorded")
	}
	if r.g.Segments[0].Ctx != trace.CtxTask || r.g.Segments[0].Note != "step" {
		t.Fatalf("segment %+v", r.g.Segments[0])
	}
}

func TestChargeObserver(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	var total core.Energy
	r.bus.Subscribe(func(e event.Event) {
		total += core.Energy(e.Energy)
	}, event.KindRunSlice)
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(5*sysc.Ms, 3*petri.MilliJ), trace.CtxTask, "")
	})
	_ = r.api.Activate(a)
	r.mustRun(t, 10*sysc.Ms)
	if total != 3*petri.MilliJ {
		t.Fatalf("observed energy %v", total)
	}
}

func TestZeroCostConsumeFiresEc(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(core.Cost{Energy: 1 * petri.MicroJ}, trace.CtxService, "zero-time")
	})
	_ = r.api.Activate(a)
	r.mustRun(t, sysc.Ms)
	if a.CEE() != 1*petri.MicroJ {
		t.Fatalf("CEE = %v", a.CEE())
	}
	if a.CET() != 0 {
		t.Fatalf("CET = %v", a.CET())
	}
}

func TestLookupByName(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	a := r.api.CreateThread("alpha", core.KindTask, 1, func(tt *core.TThread) {})
	if r.api.LookupByName("alpha") != a {
		t.Fatal("LookupByName failed")
	}
	if r.api.LookupByName("nope") != nil {
		t.Fatal("unknown name should return nil")
	}
}

func TestStatsCounters(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(10*sysc.Ms, 0), trace.CtxTask, "")
	})
	b := r.api.CreateThread("b", core.KindTask, 1, func(tt *core.TThread) {
		tt.Consume(cost(1*sysc.Ms, 0), trace.CtxTask, "")
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(2 * sysc.Ms)
		_ = r.api.Activate(b)
	})
	r.mustRun(t, sysc.Sec)
	if r.api.ContextSwitches() < 3 {
		t.Fatalf("ctx switches = %d", r.api.ContextSwitches())
	}
	if r.api.Preemptions() != 1 {
		t.Fatalf("preemptions = %d", r.api.Preemptions())
	}
}
