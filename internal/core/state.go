// Package core implements the paper's primary contribution: the T-THREAD
// controllable process model and the SIM_API simulation library.
//
// A T-THREAD (Section 3) captures the real-time aspects of an application
// task or a handler (cyclic, alarm, or external interrupt). It is built on a
// sysc thread (the analogue of SystemC SC_THREAD) running under the
// supervision of the SIM_API library so that it behaves as a synchronized
// Petri net: a cyclic object of atomic transitions with a single token
// marking its state. Events that occur within a T-THREAD belong to the
// kernel-specific set E = {Es, Ec, Ex, Ei, Ew}: startup, continue-run,
// return-from-preemption, return-from-interrupt, and sleep-event arrival.
//
// SIM_API (Section 4) supplies the RTOS-modeling constructs the SystemC core
// language lacks: dispatching, delayed dispatching, service-call atomicity,
// preemption at system-clock granularity, interrupts and nested interrupts,
// a thread registry (SIM_HashTB), an interrupt stack (SIM_Stack), pluggable
// external schedulers, and per-thread execution time/energy statistics
// (CET/CEE) with GANTT-chart debugging output.
package core

// State is the scheduling state of a T-THREAD, following the µITRON v4 task
// state model.
type State int

// T-THREAD states.
const (
	// StateNonExistent: the thread has been deleted from the registry.
	StateNonExistent State = iota
	// StateDormant: created (or exited) but not active.
	StateDormant
	// StateReady: able to run, waiting for the processor.
	StateReady
	// StateRunning: owns the processor (a task remains RUNNING while an
	// interrupt or time-event handler borrows the CPU).
	StateRunning
	// StateWaiting: blocked on a kernel wait service (the Ew sleep event).
	StateWaiting
	// StateSuspended: forcibly suspended (tk_sus_tsk).
	StateSuspended
	// StateWaitSuspended: both waiting and forcibly suspended.
	StateWaitSuspended
)

// String returns the µITRON-style state name.
func (s State) String() string {
	switch s {
	case StateNonExistent:
		return "NON-EXISTENT"
	case StateDormant:
		return "DORMANT"
	case StateReady:
		return "READY"
	case StateRunning:
		return "RUNNING"
	case StateWaiting:
		return "WAITING"
	case StateSuspended:
		return "SUSPENDED"
	case StateWaitSuspended:
		return "WAITING-SUSPENDED"
	}
	return "?"
}

// Kind classifies a T-THREAD by the embedded-software object it wraps.
type Kind int

// T-THREAD kinds.
const (
	// KindTask is an application task scheduled by the kernel.
	KindTask Kind = iota
	// KindCyclicHandler is a periodic time-event handler.
	KindCyclicHandler
	// KindAlarmHandler is a one-shot time-event handler.
	KindAlarmHandler
	// KindISR is an external-interrupt service routine.
	KindISR
)

// String returns the kind's short name.
func (k Kind) String() string {
	switch k {
	case KindTask:
		return "task"
	case KindCyclicHandler:
		return "cyclic"
	case KindAlarmHandler:
		return "alarm"
	case KindISR:
		return "isr"
	}
	return "?"
}

// HandlerLevel reports whether the kind executes in a task-independent
// (interrupt-like) context, where blocking is forbidden and task dispatching
// is delayed until the handler returns.
func (k Kind) HandlerLevel() bool { return k != KindTask }

// Scheduler is the external-scheduler plug-in interface of SIM_API. The
// library interacts directly with it to pick the next T-THREAD to run; the
// three kernel models of the paper (RTK-Spec I round-robin, RTK-Spec II
// priority-preemptive, RTK-Spec TRON) supply different implementations.
//
// A running thread is never kept in the ready structure. Lower Priority
// values mean higher precedence (µITRON convention).
type Scheduler interface {
	// Enqueue adds a thread at the tail of its precedence class.
	Enqueue(t *TThread)
	// EnqueueFront adds a thread at the head of its precedence class
	// (a preempted task keeps precedence within its priority).
	EnqueueFront(t *TThread)
	// Dequeue removes the thread wherever it is; no-op if absent.
	Dequeue(t *TThread)
	// Peek returns the next thread to dispatch without removing it, or nil.
	Peek() *TThread
	// ShouldPreempt reports whether `ready` must preempt `running`.
	ShouldPreempt(running, ready *TThread) bool
	// Rotate moves the head of the given precedence class to its tail
	// (tk_rot_rdq / round-robin time slicing).
	Rotate(priority int)
	// Len returns the number of queued (ready) threads.
	Len() int
}
