package core

import (
	"fmt"
	"io"

	"repro/internal/event"
	"repro/internal/sysc"
)

// EventKind classifies a kernel-dynamics event recorded by the event log.
type EventKind int

// Kernel dynamics events, matching the T-THREAD event set and the SIM_API
// operations of Figure 3.
const (
	EvDispatch  EventKind = iota // a thread was given the CPU (Es/Ex)
	EvPreempt                    // the running thread was preempted
	EvBlock                      // a thread entered WAITING (Ew)
	EvRelease                    // a thread's sleep event arrived
	EvIntEnter                   // a handler was pushed on SIM_Stack
	EvIntExit                    // a handler returned
	EvActivate                   // a dormant thread became ready
	EvExit                       // a thread's cycle ended
	EvTerminate                  // a thread was forcibly terminated
	EvSuspend                    // forced suspension
	EvResume                     // forced resumption
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvDispatch:
		return "dispatch"
	case EvPreempt:
		return "preempt"
	case EvBlock:
		return "block"
	case EvRelease:
		return "release"
	case EvIntEnter:
		return "int-enter"
	case EvIntExit:
		return "int-exit"
	case EvActivate:
		return "activate"
	case EvExit:
		return "exit"
	case EvTerminate:
		return "terminate"
	case EvSuspend:
		return "suspend"
	case EvResume:
		return "resume"
	}
	return "?"
}

// Event is one kernel-dynamics event.
type Event struct {
	Time   sysc.Time
	Kind   EventKind
	Thread string
	Detail string
}

// EventLog records kernel-dynamics events for run-time tracing of internal
// state changes (the T-Kernel/DS tracing use case). The zero value is
// disabled; attach one with SimAPI.SetEventLog.
type EventLog struct {
	events []Event
	limit  int
}

// NewEventLog returns a recorder capped at limit events (0 = unlimited).
func NewEventLog(limit int) *EventLog { return &EventLog{limit: limit} }

// Len returns the number of recorded events.
func (l *EventLog) Len() int { return len(l.events) }

// Events returns a copy of the recorded events.
func (l *EventLog) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// ByKind returns the recorded events of one kind.
func (l *EventLog) ByKind(k EventKind) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Render writes the log as one line per event.
func (l *EventLog) Render(w io.Writer) {
	fmt.Fprintf(w, "%-14s %-10s %-16s %s\n", "TIME", "EVENT", "T-THREAD", "DETAIL")
	for _, e := range l.events {
		fmt.Fprintf(w, "%-14s %-10s %-16s %s\n", e.Time, e.Kind, e.Thread, e.Detail)
	}
}

// add appends an event, honouring the cap.
func (l *EventLog) add(e Event) {
	if l.limit > 0 && len(l.events) >= l.limit {
		return
	}
	l.events = append(l.events, e)
}

// logKinds maps the bus event kinds the log records to their EventKind.
var logKinds = map[event.Kind]EventKind{
	event.KindDispatch:  EvDispatch,
	event.KindPreempt:   EvPreempt,
	event.KindBlock:     EvBlock,
	event.KindRelease:   EvRelease,
	event.KindIntEnter:  EvIntEnter,
	event.KindIntExit:   EvIntExit,
	event.KindActivate:  EvActivate,
	event.KindExit:      EvExit,
	event.KindTerminate: EvTerminate,
	event.KindSuspend:   EvSuspend,
	event.KindResume:    EvResume,
}

// SetEventLog attaches a kernel-dynamics event recorder (nil detaches). The
// log is an ordinary bus subscriber: it listens for the kernel-dynamics
// subset of events and renders them into the flat record the T-Kernel/DS
// tracing listing consumes.
func (a *SimAPI) SetEventLog(l *EventLog) {
	if a.elogSub != nil {
		a.elogSub.Close()
		a.elogSub = nil
	}
	a.elog = l
	if l == nil {
		return
	}
	kinds := make([]event.Kind, 0, len(logKinds))
	for k := range logKinds {
		kinds = append(kinds, k)
	}
	a.elogSub = a.bus.Subscribe(func(e event.Event) {
		detail := e.Obj
		if e.Kind == event.KindIntEnter {
			detail = fmt.Sprintf("depth %d", e.Seq)
		}
		l.add(Event{Time: e.Time, Kind: logKinds[e.Kind], Thread: e.Thread, Detail: detail})
	}, kinds...)
}

// EventLog returns the attached recorder (nil when none).
func (a *SimAPI) EventLog() *EventLog { return a.elog }
