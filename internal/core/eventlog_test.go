package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/trace"
)

func TestEventLogRecordsKernelDynamics(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	log := core.NewEventLog(0)
	r.api.SetEventLog(log)

	lo := r.api.CreateThread("lo", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(10*sysc.Ms, 0), trace.CtxTask, "")
	})
	hi := r.api.CreateThread("hi", core.KindTask, 1, func(tt *core.TThread) {
		tt.Consume(cost(2*sysc.Ms, 0), trace.CtxTask, "")
	})
	isr := r.api.CreateThread("isr", core.KindISR, 0, func(tt *core.TThread) {
		tt.Consume(cost(1*sysc.Ms, 0), trace.CtxHandler, "")
	})
	_ = r.api.Activate(lo)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(2 * sysc.Ms)
		_ = r.api.Activate(hi)
		th.Wait(5 * sysc.Ms)
		_ = r.api.EnterInterrupt(isr)
	})
	r.mustRun(t, sysc.Sec)

	if len(log.ByKind(core.EvActivate)) != 2 {
		t.Fatalf("activates = %d", len(log.ByKind(core.EvActivate)))
	}
	pre := log.ByKind(core.EvPreempt)
	if len(pre) != 1 || pre[0].Thread != "lo" || !strings.Contains(pre[0].Detail, "hi") {
		t.Fatalf("preempts = %+v", pre)
	}
	if len(log.ByKind(core.EvIntEnter)) != 1 || len(log.ByKind(core.EvIntExit)) != 1 {
		t.Fatal("interrupt events missing")
	}
	if len(log.ByKind(core.EvDispatch)) < 3 {
		t.Fatalf("dispatches = %d", len(log.ByKind(core.EvDispatch)))
	}
	if len(log.ByKind(core.EvExit)) != 2 { // two task exits (isr exit is int-exit)
		t.Fatalf("exits = %d", len(log.ByKind(core.EvExit)))
	}
	// Events carry timestamps in order.
	evs := log.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatal("event log out of order")
		}
	}
	var sb strings.Builder
	log.Render(&sb)
	if !strings.Contains(sb.String(), "preempt") || !strings.Contains(sb.String(), "int-enter") {
		t.Fatalf("render:\n%s", sb.String())
	}
}

func TestEventLogBlockRelease(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	log := core.NewEventLog(0)
	r.api.SetEventLog(log)
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		_ = r.api.BlockCurrent("sem#7")
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(3 * sysc.Ms)
		r.api.Release(a, nil)
	})
	r.mustRun(t, sysc.Sec)
	blocks := log.ByKind(core.EvBlock)
	if len(blocks) != 1 || blocks[0].Detail != "sem#7" {
		t.Fatalf("blocks = %+v", blocks)
	}
	if len(log.ByKind(core.EvRelease)) != 1 {
		t.Fatal("release missing")
	}
}

func TestEventLogLimit(t *testing.T) {
	log := core.NewEventLog(2)
	r := newRig()
	defer r.sim.Shutdown()
	r.api.SetEventLog(log)
	for i := 0; i < 5; i++ {
		a := r.api.CreateThread("t", core.KindTask, 10, func(tt *core.TThread) {})
		_ = r.api.Activate(a)
	}
	r.mustRun(t, 10*sysc.Ms)
	if log.Len() != 2 {
		t.Fatalf("len = %d, want capped 2", log.Len())
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []core.EventKind{core.EvDispatch, core.EvPreempt, core.EvBlock,
		core.EvRelease, core.EvIntEnter, core.EvIntExit, core.EvActivate,
		core.EvExit, core.EvTerminate, core.EvSuspend, core.EvResume}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "?" || seen[s] {
			t.Fatalf("bad/duplicate name %q", s)
		}
		seen[s] = true
	}
}
