package core

import (
	"repro/internal/event"
	"repro/internal/petri"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// This file is the continuation-engine face of the T-THREAD: resumable
// counterparts of the goroutine blocking primitives (waitForCPU, Consume,
// BlockCurrent) and the coroutine cycle driver that replaces TThread.run.
//
// Each Step* primitive mirrors its blocking twin phase for phase: where the
// goroutine version parks its process inside sysc.Thread.Wait*, the
// resumable version arms the identical wait on the T-THREAD's sysc.Coro and
// returns StepWait; the next coroutine step re-enters the primitive, which
// resumes from its recorded phase. Because both versions traverse the same
// bookkeeping in the same order (fires, charges, bus publishes, scheduler
// calls), a compiled body produces byte-identical kernel dynamics on either
// engine.

// Step is the outcome of driving one resumable primitive.
type Step uint8

// Step outcomes.
const (
	// StepDone: the primitive completed; the machine proceeds.
	StepDone Step = iota
	// StepWait: a wait was armed on the coroutine; the machine must return
	// BodyWait and re-enter the same primitive on the next step.
	StepWait
	// StepReset: the thread was terminated mid-primitive; the machine must
	// unwind and return BodyReset (the resetSignal panic of the goroutine
	// engine, without a stack to unwind).
	StepReset
)

// BodyStep is the outcome of one step of a compiled T-THREAD body.
type BodyStep uint8

// Body outcomes.
const (
	// BodyDone: the body finished its cycle (the goroutine body returned).
	// The machine has rewound itself for the next activation.
	BodyDone BodyStep = iota
	// BodyWait: the body parked at a yield point; step again when the armed
	// wait fires.
	BodyWait
	// BodyReset: the body observed a terminate/reset mid-cycle and has
	// rewound itself for the next activation.
	BodyReset
)

// CompiledBody is a T-THREAD body expressed as a resumable state machine
// for the continuation engine. Step drives the body until it completes,
// parks, or is reset; on BodyDone/BodyReset the implementation must have
// rewound its own state so the next Step begins a fresh cycle.
type CompiledBody interface {
	Step(t *TThread) BodyStep
}

// consumePhase tracks where inside Consume a resumable thread is parked.
type consumePhase uint8

const (
	csIdle      consumePhase = iota
	csAcquire                // initial waitForCPU (and first-slice arm)
	csSlice                  // parked in WaitTimeout(remaining, preemptEv)
	csReacquire              // waitForCPU after a preemption mid-budget
	csFinal                  // final waitForCPU before the Ec fire
)

// consumeState is the saved frame of one in-flight StepConsume.
type consumeState struct {
	phase     consumePhase
	cost      Cost
	ctx       trace.Context
	note      string
	total     sysc.Time
	remaining sysc.Time
	start     sysc.Time
}

// blockPhase tracks where inside BlockCurrent a resumable thread is parked.
type blockPhase uint8

const (
	bsIdle    blockPhase = iota
	bsAcquire            // pre-commit waitForCPU + pendingRel fast path
	bsPark               // committed to WAITING, parked for redispatch
)

// StepAwaitCPU is the resumable waitForCPU/AwaitCPU: re-enter until it
// stops returning StepWait.
func (t *TThread) StepAwaitCPU() Step {
	if t.terminated {
		return StepReset
	}
	if t.ownsCPU() {
		return StepDone
	}
	t.co.WaitEvent(t.dispatchEv)
	return StepWait
}

// StepConsume is the resumable Consume (SIM_Wait). The cost/ctx/note
// arguments are captured on the first entry of an episode and ignored while
// one is in flight, so the machine may pass them on every re-entry.
func (t *TThread) StepConsume(cost Cost, ctx trace.Context, note string) Step {
	cs := &t.cs
	for {
		switch cs.phase {
		case csIdle:
			if t.api.consumeShaper != nil {
				cost = t.api.consumeShaper(t, cost, ctx)
			}
			cs.cost, cs.ctx, cs.note = cost, ctx, note
			cs.total = cost.Time
			cs.remaining = cs.total
			cs.phase = csAcquire
		case csAcquire:
			if t.terminated {
				cs.phase = csIdle
				return StepReset
			}
			if !t.ownsCPU() {
				t.co.WaitEvent(t.dispatchEv)
				return StepWait
			}
			if cs.remaining <= 0 {
				// Zero-time step: record the marker and the energy, fire Ec.
				t.charge(t.Now(), t.Now(), cs.cost.Energy, cs.ctx, cs.note)
				t.fire(trEc, cs.cost)
				cs.phase = csIdle
				return StepDone
			}
			cs.start = t.Now()
			t.co.WaitTimeout(cs.remaining, t.preemptEv)
			cs.phase = csSlice
			return StepWait
		case csSlice:
			timedOut := t.co.TimedOut()
			consumed := t.Now() - cs.start
			if consumed > 0 || timedOut {
				frac := float64(consumed) / float64(cs.total)
				t.charge(cs.start, cs.start+consumed,
					Energy(float64(cs.cost.Energy)*frac), cs.ctx, cs.note)
				cs.remaining -= consumed
			}
			if timedOut {
				cs.phase = csFinal
				continue
			}
			if t.terminated {
				cs.phase = csIdle
				return StepReset
			}
			cs.phase = csReacquire
		case csReacquire:
			if t.terminated {
				cs.phase = csIdle
				return StepReset
			}
			if !t.ownsCPU() {
				t.co.WaitEvent(t.dispatchEv)
				return StepWait
			}
			if cs.remaining > 0 {
				cs.start = t.Now()
				t.co.WaitTimeout(cs.remaining, t.preemptEv)
				cs.phase = csSlice
				return StepWait
			}
			cs.phase = csFinal
		case csFinal:
			// The step may have completed at the same instant the thread was
			// scheduled out; the Ec transition fires once it owns the CPU
			// again (the trailing waitForCPU of the goroutine version).
			if t.terminated {
				cs.phase = csIdle
				return StepReset
			}
			if !t.ownsCPU() {
				t.co.WaitEvent(t.dispatchEv)
				return StepWait
			}
			t.fire(trEc, cs.cost)
			cs.phase = csIdle
			return StepDone
		}
	}
}

// StepBlock is the resumable BlockCurrent (SIM_Sleep). On StepDone the
// returned error is the release code Release delivered (nil for a normal
// wakeup); it is meaningless for other outcomes.
func (t *TThread) StepBlock(waitObj string) (Step, error) {
	a := t.api
	for {
		switch t.bs {
		case bsIdle:
			if len(a.istack) > 0 {
				panic("core: BlockCurrent from handler context")
			}
			t.bs = bsAcquire
		case bsAcquire:
			if t.terminated {
				t.bs = bsIdle
				return StepReset, nil
			}
			if !t.ownsCPU() {
				t.co.WaitEvent(t.dispatchEv)
				return StepWait, nil
			}
			if t.hasPendingRel {
				t.hasPendingRel = false
				t.bs = bsIdle
				return StepDone, t.pendingRel
			}
			t.state = StateWaiting
			t.waitObj = waitObj
			t.relCode = nil
			a.publish(event.KindBlock, t, waitObj)
			t.fire(trEw, Cost{})
			a.current = nil
			a.RequestDispatch()
			t.bs = bsPark
		case bsPark:
			if t.terminated {
				t.bs = bsIdle
				return StepReset, nil
			}
			if !t.ownsCPU() {
				t.co.WaitEvent(t.dispatchEv)
				return StepWait, nil
			}
			t.bs = bsIdle
			return StepDone, t.relCode
		}
	}
}

// coroStep is the coroutine cycle driver wrapping a compiled T-THREAD: the
// continuation-engine twin of TThread.run. One invocation drives the body
// as far as it can go — through whole cycles when activations chain — and
// returns with exactly one wait armed.
func (t *TThread) coroStep(c *sysc.Coro) {
	for {
		if !t.crInBody {
			// Park until dispatched for a new cycle (safeWaitForCPU).
			if t.ownsCPU() && !t.terminated {
				t.crInBody = true
				continue
			}
			t.terminated = false
			c.WaitEvent(t.dispatchEv)
			return
		}
		switch t.compiled.Step(t) {
		case BodyWait:
			return
		case BodyReset:
			// Reset path: Terminate already performed the bookkeeping.
			t.terminated = false
			t.cycleEnd()
			t.crInBody = false
		case BodyDone:
			t.api.threadExited(t)
			t.cycleEnd()
			t.crInBody = false
		}
	}
}

// CreateThreadCompiled registers a new T-THREAD whose body is a compiled
// state machine driven by a sysc coroutine — the continuation engine's
// CreateThread. The thread is indistinguishable from a goroutine-backed one
// to the scheduler, the kernel layers and every observer.
func (a *SimAPI) CreateThreadCompiled(name string, kind Kind, priority int, body CompiledBody) *TThread {
	a.nextID++
	t := &TThread{
		api:          a,
		id:           a.nextID,
		name:         name,
		kind:         kind,
		compiled:     body,
		priority:     priority,
		basePriority: priority,
		state:        StateDormant,
		net:          newTThreadNet(name),
	}
	t.seq = petri.NewFiringSequence(t.net)
	t.dispatchEv = a.sim.NewEvent(name + ".dispatch")
	t.preemptEv = a.sim.NewEvent(name + ".preempt")
	a.table[t.id] = t
	a.order = append(a.order, t)
	t.co = a.sim.SpawnCoro("tthread."+name, t.coroStep)
	if a.byCoro == nil {
		a.byCoro = map[*sysc.Coro]*TThread{}
	}
	a.byCoro[t.co] = t
	return t
}

// Compiled reports whether the thread's body is a compiled state machine
// (continuation engine) rather than a goroutine closure.
func (t *TThread) Compiled() bool { return t.compiled != nil }
