package core

import (
	"fmt"

	"repro/internal/petri"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// This file is the SIM_API layer of the kernel snapshot stack
// (internal/snapshot): quiescent-point capture and in-place restore of
// every T-THREAD's dynamic state and of the library's own dispatching
// state. It sits directly above sysc.SaveState/LoadState — the sysc layer
// owns process wait sets and the timed heap; this layer owns the Petri
// markings, the firing sequences, the saved continuation frames, the
// ready-queue order and the interrupt stack.

// ConsumeState is the exported mirror of the consumeState frame: where
// inside an in-flight Consume episode a continuation-engine thread is
// parked, and the episode's remaining budget.
type ConsumeState struct {
	Phase     uint8
	Cost      Cost
	Ctx       trace.Context
	Note      string
	Total     sysc.Time
	Remaining sysc.Time
	Start     sysc.Time
}

// TThreadState is the captured dynamic state of one T-THREAD.
type TThreadState struct {
	ID           int // registry identifier, for cross-checks only
	Priority     int
	BasePriority int
	State        State
	SuspCount    int
	Terminated   bool
	WaitObj      string
	RelCode      error // T-Kernel ER singletons or nil
	ActCount     int
	PendingRel    error
	HasPendingRel bool

	// Continuation-engine resumption state (zero for goroutine threads).
	CrInBody bool
	Consume  ConsumeState
	Block    uint8 // blockPhase

	// Petri-net execution model.
	Marking []int
	Seq     petri.SequenceState
	Acc     petri.Accumulator
	LastCV  []int
}

// APIState is the captured dynamic state of the SIM_API library.
type APIState struct {
	Threads []TThreadState // registry (creation) order
	Ready   []int          // thread IDs in scheduler dequeue order
	Current int            // RUNNING task's ID, -1 when the CPU idles
	IStack  []int          // nested handler thread IDs, bottom first

	DispatchLocked  int
	PendingDispatch bool
	Busy            sysc.Time

	CtxSwitches uint64
	Preemptions uint64
	Interrupts  uint64
	MaxIStack   int
}

// CompiledBody returns the compiled state machine driving the thread on
// the continuation engine, or nil for goroutine-backed threads. The kernel
// snapshot layer uses it to reach the machine's own resumption state
// (program counter, service phase).
func (t *TThread) CompiledBody() CompiledBody { return t.compiled }

// readyWalker is the optional scheduler capability snapshotting needs:
// visiting the ready population in dequeue order without mutating it.
// Both internal/sched implementations provide it.
type readyWalker interface{ Walk(fn func(*TThread)) }

// SaveState captures the library's dynamic state at a sysc quiescent
// point. It fails when the installed scheduler cannot enumerate its queue.
func (a *SimAPI) SaveState() (*APIState, error) {
	w, ok := a.sched.(readyWalker)
	if !ok {
		return nil, fmt.Errorf("core: scheduler %T does not support state capture (no Walk)", a.sched)
	}
	st := &APIState{
		Threads:         make([]TThreadState, len(a.order)),
		Current:         -1,
		DispatchLocked:  a.dispatchLocked,
		PendingDispatch: a.pendingDispatch,
		Busy:            a.busy,
		CtxSwitches:     a.ctxSwitches,
		Preemptions:     a.preemptions,
		Interrupts:      a.interrupts,
		MaxIStack:       a.maxIStack,
	}
	for i, t := range a.order {
		st.Threads[i] = TThreadState{
			ID:            t.id,
			Priority:      t.priority,
			BasePriority:  t.basePriority,
			State:         t.state,
			SuspCount:     t.suspCount,
			Terminated:    t.terminated,
			WaitObj:       t.waitObj,
			RelCode:       t.relCode,
			ActCount:      t.actCount,
			PendingRel:    t.pendingRel,
			HasPendingRel: t.hasPendingRel,
			CrInBody:      t.crInBody,
			Consume: ConsumeState{
				Phase:     uint8(t.cs.phase),
				Cost:      t.cs.cost,
				Ctx:       t.cs.ctx,
				Note:      t.cs.note,
				Total:     t.cs.total,
				Remaining: t.cs.remaining,
				Start:     t.cs.start,
			},
			Block:   uint8(t.bs),
			Marking: t.net.Marking(),
			Seq:     t.seq.SaveState(),
			Acc:     t.acc,
			LastCV:  append([]int(nil), t.lastCV...),
		}
	}
	w.Walk(func(t *TThread) { st.Ready = append(st.Ready, t.id) })
	if a.current != nil {
		st.Current = a.current.id
	}
	for _, h := range a.istack {
		st.IStack = append(st.IStack, h.id)
	}
	return st, nil
}

// LoadState restores a state captured from this same construction: same
// thread registry, same scheduler. The ready queue is drained and rebuilt
// in captured dequeue order after every thread's priority is restored, so
// the scheduler's internal structure (bitmap, class lists) comes back
// identical.
func (a *SimAPI) LoadState(st *APIState) error {
	if len(a.order) != len(st.Threads) {
		return fmt.Errorf("core: state mismatch: captured %d threads, registry has %d",
			len(st.Threads), len(a.order))
	}
	for i, t := range a.order {
		if t.id != st.Threads[i].ID {
			return fmt.Errorf("core: state mismatch: registry slot %d holds thread %d, capture has %d",
				i, t.id, st.Threads[i].ID)
		}
	}
	// Drain whatever the scheduler currently holds; the intrusive links know
	// their own list, so stale priorities cannot corrupt the dequeue.
	for {
		t := a.sched.Peek()
		if t == nil {
			break
		}
		a.sched.Dequeue(t)
	}
	for i, t := range a.order {
		ts := &st.Threads[i]
		t.priority = ts.Priority
		t.basePriority = ts.BasePriority
		t.state = ts.State
		t.suspCount = ts.SuspCount
		t.terminated = ts.Terminated
		t.waitObj = ts.WaitObj
		t.relCode = ts.RelCode
		t.actCount = ts.ActCount
		t.pendingRel = ts.PendingRel
		t.hasPendingRel = ts.HasPendingRel
		t.crInBody = ts.CrInBody
		t.cs = consumeState{
			phase:     consumePhase(ts.Consume.Phase),
			cost:      ts.Consume.Cost,
			ctx:       ts.Consume.Ctx,
			note:      ts.Consume.Note,
			total:     ts.Consume.Total,
			remaining: ts.Consume.Remaining,
			start:     ts.Consume.Start,
		}
		t.bs = blockPhase(ts.Block)
		if err := t.net.SetMarking(ts.Marking); err != nil {
			return fmt.Errorf("core: thread %q: %w", t.name, err)
		}
		if err := t.seq.LoadState(ts.Seq); err != nil {
			return fmt.Errorf("core: thread %q: %w", t.name, err)
		}
		t.acc = ts.Acc
		t.lastCV = append(t.lastCV[:0], ts.LastCV...)
	}
	for _, id := range st.Ready {
		t := a.table[id]
		if t == nil {
			return fmt.Errorf("core: ready queue references unknown thread %d", id)
		}
		a.sched.Enqueue(t)
	}
	a.current = nil
	if st.Current >= 0 {
		t := a.table[st.Current]
		if t == nil {
			return fmt.Errorf("core: current references unknown thread %d", st.Current)
		}
		a.current = t
	}
	a.istack = a.istack[:0]
	for _, id := range st.IStack {
		t := a.table[id]
		if t == nil {
			return fmt.Errorf("core: interrupt stack references unknown thread %d", id)
		}
		a.istack = append(a.istack, t)
	}
	a.dispatchLocked = st.DispatchLocked
	a.pendingDispatch = st.PendingDispatch
	a.busy = st.Busy
	a.ctxSwitches = st.CtxSwitches
	a.preemptions = st.Preemptions
	a.interrupts = st.Interrupts
	a.maxIStack = st.MaxIStack
	return nil
}
