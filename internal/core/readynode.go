package core

// ReadyNode is the intrusive ready-queue link embedded in every TThread.
// Scheduler implementations thread their per-priority doubly-linked lists
// through these nodes, so enqueue/dequeue/rotate never allocate — the
// classic RTOS TCB-list layout (µITRON/T-Kernel ready queues work the same
// way). A thread sits in at most one ready structure at a time: In points at
// the Scheduler currently holding the thread (nil when unqueued), which
// makes Dequeue of an absent thread a no-op and lets a re-enqueue relocate
// the node instead of corrupting the previous list.
type ReadyNode struct {
	Next, Prev *TThread
	In         Scheduler // owning queue, nil when not queued
	Prio       int       // precedence class the node was filed under at enqueue
}

// ReadyLink exposes the thread's intrusive ready-queue node to scheduler
// implementations. Only the Scheduler recorded in the node's In field may
// mutate the link fields.
func (t *TThread) ReadyLink() *ReadyNode { return &t.ready }
