package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sysc"
	"repro/internal/trace"
)

func TestInterruptDuringServiceLockCompletesServiceFirst(t *testing.T) {
	// An interrupt preempts even while dispatching is locked, but the
	// task-level dispatch it causes is deferred past both the handler AND
	// the lock.
	r := newRig()
	defer r.sim.Shutdown()
	var hiStart, svcEnd sysc.Time
	svc := r.api.CreateThread("svc", core.KindTask, 10, func(tt *core.TThread) {
		r.api.LockDispatch()
		tt.Consume(cost(10*sysc.Ms, 0), trace.CtxService, "atomic")
		svcEnd = tt.Now()
		r.api.UnlockDispatch()
	})
	hi := r.api.CreateThread("hi", core.KindTask, 1, func(tt *core.TThread) {
		hiStart = tt.Now()
	})
	isr := r.api.CreateThread("isr", core.KindISR, 0, func(tt *core.TThread) {
		tt.Consume(cost(2*sysc.Ms, 0), trace.CtxHandler, "")
		_ = r.api.Activate(hi) // delayed: handler active AND dispatch locked
	})
	_ = r.api.Activate(svc)
	r.sim.Spawn("intc", func(th *sysc.Thread) {
		th.Wait(3 * sysc.Ms)
		_ = r.api.EnterInterrupt(isr)
	})
	r.mustRun(t, sysc.Sec)
	// Service: 3 ms before ISR + 2 ms ISR + remaining 7 ms = ends at 12 ms.
	if svcEnd != 12*sysc.Ms {
		t.Fatalf("service ended at %v, want 12 ms", svcEnd)
	}
	// hi dispatches only after the service unlock.
	if hiStart != 12*sysc.Ms {
		t.Fatalf("hi started at %v, want 12 ms", hiStart)
	}
}

func TestTerminateTaskWhileInterruptActive(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	finished := false
	task := r.api.CreateThread("task", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(20*sysc.Ms, 0), trace.CtxTask, "")
		finished = true
	})
	isr := r.api.CreateThread("isr", core.KindISR, 0, func(tt *core.TThread) {
		// Terminate the interrupted task from inside the handler.
		if err := r.api.Terminate(task); err != nil {
			panic(err)
		}
		tt.Consume(cost(2*sysc.Ms, 0), trace.CtxHandler, "")
	})
	_ = r.api.Activate(task)
	r.sim.Spawn("intc", func(th *sysc.Thread) {
		th.Wait(5 * sysc.Ms)
		_ = r.api.EnterInterrupt(isr)
	})
	r.mustRun(t, sysc.Sec)
	if finished {
		t.Fatal("terminated task completed")
	}
	if task.State() != core.StateDormant {
		t.Fatalf("state %v", task.State())
	}
	if task.CET() != 5*sysc.Ms {
		t.Fatalf("CET = %v", task.CET())
	}
}

func TestSuspendResumeWhileWaitingThenRelease(t *testing.T) {
	// Release while WAITING-SUSPENDED leaves SUSPENDED; the wait result is
	// delivered when the suspension is lifted.
	r := newRig()
	defer r.sim.Shutdown()
	var out error
	var at sysc.Time
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		out = r.api.BlockCurrent("obj")
		at = tt.Now()
	})
	_ = r.api.Activate(a)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(1 * sysc.Ms)
		_ = r.api.SuspendForce(a)
		th.Wait(1 * sysc.Ms)
		r.api.Release(a, nil)
		if a.State() != core.StateSuspended {
			panic("expected SUSPENDED after release of WAIT-SUSPENDED")
		}
		th.Wait(3 * sysc.Ms)
		_ = r.api.ResumeForce(a)
	})
	r.mustRun(t, sysc.Sec)
	if out != nil || at != 5*sysc.Ms {
		t.Fatalf("out=%v at=%v", out, at)
	}
}

func TestPreemptionAtExactCompletionInstant(t *testing.T) {
	// A task whose Consume completes in the same instant it is preempted
	// must neither lose nor double-count time.
	r := newRRRig()
	defer r.sim.Shutdown()
	a := r.api.CreateThread("a", core.KindTask, 0, func(tt *core.TThread) {
		tt.Consume(cost(5*sysc.Ms, 0), trace.CtxTask, "")
	})
	b := r.api.CreateThread("b", core.KindTask, 0, func(tt *core.TThread) {
		tt.Consume(cost(5*sysc.Ms, 0), trace.CtxTask, "")
	})
	_ = r.api.Activate(a)
	_ = r.api.Activate(b)
	r.sim.Spawn("tick", func(th *sysc.Thread) {
		for {
			th.Wait(5 * sysc.Ms) // rotation exactly at completion boundary
			r.api.YieldCurrent()
		}
	})
	r.mustRun(t, 100*sysc.Ms)
	if a.CET() != 5*sysc.Ms || b.CET() != 5*sysc.Ms {
		t.Fatalf("CET a=%v b=%v", a.CET(), b.CET())
	}
	if a.State() != core.StateDormant {
		t.Fatalf("a state %v", a.State())
	}
}

func TestMultiplePreemptionsAccumulateExactly(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	long := r.api.CreateThread("long", core.KindTask, 20, func(tt *core.TThread) {
		tt.Consume(cost(50*sysc.Ms, 50), trace.CtxTask, "")
	})
	_ = r.api.Activate(long)
	// A high-priority task fires every 7 ms, stealing 2 ms each time.
	blips := 0
	var blip *core.TThread
	blip = r.api.CreateThread("blip", core.KindTask, 1, func(tt *core.TThread) {
		tt.Consume(cost(2*sysc.Ms, 2), trace.CtxTask, "")
		blips++
	})
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		for i := 0; i < 8; i++ {
			th.Wait(7 * sysc.Ms)
			_ = r.api.Activate(blip)
		}
	})
	r.mustRun(t, sysc.Sec)
	if long.CET() != 50*sysc.Ms {
		t.Fatalf("long CET = %v, want exactly 50 ms", long.CET())
	}
	if blip.CET() != sysc.Time(blips)*2*sysc.Ms {
		t.Fatalf("blip CET = %v for %d runs", blip.CET(), blips)
	}
	if got := long.CEE(); got < 49.999 || got > 50.001 {
		t.Fatalf("long CEE = %v, want ~50 (pro-rata sums)", got)
	}
	if _, _, overlap := r.g.CheckNoOverlap(); overlap {
		t.Fatal("GANTT overlap")
	}
}

func TestHandlerConsumeAfterTaskBlocked(t *testing.T) {
	// A handler entered while the CPU idles (no current task) runs alone.
	r := newRig()
	defer r.sim.Shutdown()
	var end sysc.Time
	isr := r.api.CreateThread("isr", core.KindISR, 0, func(tt *core.TThread) {
		tt.Consume(cost(3*sysc.Ms, 0), trace.CtxHandler, "")
		end = tt.Now()
	})
	r.sim.Spawn("intc", func(th *sysc.Thread) {
		th.Wait(2 * sysc.Ms)
		_ = r.api.EnterInterrupt(isr)
	})
	r.mustRun(t, 100*sysc.Ms)
	if end != 5*sysc.Ms {
		t.Fatalf("isr ended at %v", end)
	}
	if r.api.CPUOwner() != nil {
		t.Fatal("CPU should be idle after handler exit")
	}
}

func TestCharacteristicVectorAcrossCycles(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(1*sysc.Ms, 0), trace.CtxTask, "")
		tt.Consume(cost(1*sysc.Ms, 0), trace.CtxTask, "")
	})
	_ = r.api.Activate(a)
	r.mustRun(t, 10*sysc.Ms)
	cv1 := a.CharacteristicVector()
	// Cycle 1: Es + Ec + Ec + exit = 4 firings.
	sum := 0
	for _, v := range cv1 {
		sum += v
	}
	if sum != 4 {
		t.Fatalf("cycle-1 firings = %d (%v)", sum, cv1)
	}
	_ = r.api.Activate(a)
	r.mustRun(t, 20*sysc.Ms)
	cv2 := a.CharacteristicVector()
	for i := range cv1 {
		if cv1[i] != cv2[i] {
			t.Fatalf("identical cycles differ: %v vs %v", cv1, cv2)
		}
	}
	if a.Cycles() != 2 {
		t.Fatalf("cycles = %d", a.Cycles())
	}
}

func TestExitFromWithinBody(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	after := false
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(1*sysc.Ms, 0), trace.CtxTask, "")
		tt.Exit()
		after = true
	})
	_ = r.api.Activate(a)
	r.mustRun(t, 10*sysc.Ms)
	if after {
		t.Fatal("code after Exit ran")
	}
	if a.State() != core.StateDormant {
		t.Fatalf("state %v", a.State())
	}
	// Reusable after Exit.
	if err := r.api.Activate(a); err != nil {
		t.Fatal(err)
	}
	r.mustRun(t, 20*sysc.Ms)
	if a.Cycles() != 2 {
		t.Fatalf("cycles = %d", a.Cycles())
	}
}

func TestYieldCurrentNoReadyPeer(t *testing.T) {
	r := newRig()
	defer r.sim.Shutdown()
	var end sysc.Time
	a := r.api.CreateThread("a", core.KindTask, 10, func(tt *core.TThread) {
		tt.Consume(cost(2*sysc.Ms, 0), trace.CtxTask, "")
		r.api.YieldCurrent() // alone: immediately redispatched
		tt.Consume(cost(2*sysc.Ms, 0), trace.CtxTask, "")
		end = tt.Now()
	})
	_ = r.api.Activate(a)
	r.mustRun(t, 100*sysc.Ms)
	if end != 4*sysc.Ms {
		t.Fatalf("end = %v", end)
	}
}

func TestReleaseLatchedInDecideToBlockWindow(t *testing.T) {
	// A task wakes a higher-priority peer and then blocks: the peer may run
	// (and even deliver the release) before the waker reaches BlockCurrent.
	// The latched release must complete the block instantly — no lost
	// wakeup, no deadlock.
	r := newRig()
	defer r.sim.Shutdown()
	var loDone sysc.Time
	var relErr error = errTest("unset")
	var lo, hi *core.TThread
	lo = r.api.CreateThread("lo", core.KindTask, 20, func(tt *core.TThread) {
		tt.Consume(cost(2*sysc.Ms, 0), trace.CtxTask, "")
		// Wake hi (which will immediately preempt at the next dispatch)…
		_ = r.api.Activate(hi)
		// …then block. hi released us before we ever blocked.
		relErr = r.api.BlockCurrent("handoff")
		loDone = tt.Now()
	})
	hi = r.api.CreateThread("hi", core.KindTask, 1, func(tt *core.TThread) {
		tt.Consume(cost(3*sysc.Ms, 0), trace.CtxTask, "")
		r.api.Release(lo, nil) // lo is READY (pre-block): latches
	})
	_ = r.api.Activate(lo)
	r.mustRun(t, sysc.Sec)
	if relErr != nil {
		t.Fatalf("release code = %v", relErr)
	}
	if loDone != 5*sysc.Ms {
		t.Fatalf("lo resumed at %v, want 5 ms (after hi)", loDone)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestConsumeFromNonOwnerParksUntilDispatched(t *testing.T) {
	// AwaitCPU semantics: a thread that lost the CPU in a zero-time window
	// parks at its next Consume and resumes later without losing budget.
	r := newRig()
	defer r.sim.Shutdown()
	var loEnd sysc.Time
	lo := r.api.CreateThread("lo", core.KindTask, 20, func(tt *core.TThread) {
		tt.Consume(cost(3*sysc.Ms, 0), trace.CtxTask, "a")
		// zero-time window here; hi may be dispatched in between
		tt.Consume(cost(3*sysc.Ms, 0), trace.CtxTask, "b")
		loEnd = tt.Now()
	})
	hi := r.api.CreateThread("hi", core.KindTask, 1, func(tt *core.TThread) {
		tt.Consume(cost(4*sysc.Ms, 0), trace.CtxTask, "")
	})
	_ = r.api.Activate(lo)
	r.sim.Spawn("driver", func(th *sysc.Thread) {
		th.Wait(3 * sysc.Ms) // exactly at lo's zero-time window
		_ = r.api.Activate(hi)
	})
	r.mustRun(t, sysc.Sec)
	if loEnd != 10*sysc.Ms {
		t.Fatalf("lo ended at %v, want 10 ms (3 + 4 stolen + 3)", loEnd)
	}
}
