package core

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/petri"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// Cost aliases the Petri-net cost model: an execution-time (ETM) and
// execution-energy (EEM) contribution of one atomic step.
type Cost = petri.Cost

// Energy aliases the energy quantity used throughout the simulator.
type Energy = petri.Energy

// resetSignal unwinds a T-THREAD body when the thread is terminated or
// reset; it is recovered by the thread's run loop.
type resetSignal struct{}

// Indexes of the transitions in a T-THREAD's Petri net (Figure 2). The net
// has four places — dormant, running, ready, waiting — and one token.
const (
	trEs  = iota // Es: startup — dormant -> running (source transition To)
	trEc         // Ec: continue-run — running -> running (one atomic step)
	trPx         // paused: running -> ready (preempted or interrupted out)
	trEx         // Ex/Ei: redispatch — ready -> running
	trEw         // Ew wait: running -> waiting (voluntary sleep)
	trWk         // Ew arrival: waiting -> ready (wakeup/release)
	trXt         // exit: running -> dormant
	trTmR        // terminate from ready/suspended -> dormant
	trTmW        // terminate from waiting -> dormant
)

// Place indexes of the T-THREAD net.
const (
	plDormant = iota
	plRunning
	plReady
	plWaiting
)

// tthreadPlaces and tthreadArcs describe the cyclic state-machine net of
// Figure 2, indexed by the pl*/tr* constants above.
var (
	tthreadPlaces = []string{"dormant", "running", "ready", "waiting"}
	tthreadArcs   = []petri.Arc{
		{Name: "Es", In: plDormant, Out: plRunning},
		{Name: "Ec", In: plRunning, Out: plRunning},
		{Name: "paused", In: plRunning, Out: plReady},
		{Name: "Ex", In: plReady, Out: plRunning},
		{Name: "Ew", In: plRunning, Out: plWaiting},
		{Name: "wakeup", In: plWaiting, Out: plReady},
		{Name: "exit", In: plRunning, Out: plDormant},
		{Name: "term-ready", In: plReady, Out: plDormant},
		{Name: "term-wait", In: plWaiting, Out: plDormant},
	}
)

// newTThreadNet builds the cyclic state-machine net of Figure 2.
func newTThreadNet(name string) *petri.Net {
	return petri.NewStateMachine(name, tthreadPlaces, plDormant, tthreadArcs)
}

// TThread is the paper's controllable process model: a cyclic object whose
// single token moves through atomic transitions as kernel events occur, and
// which can be interrupted and preempted at preemption points while
// gathering execution time and energy statistics.
type TThread struct {
	api  *SimAPI
	id   int
	name string
	kind Kind
	body func(*TThread)

	priority     int
	basePriority int

	th         *sysc.Thread
	dispatchEv *sysc.Event // Es/Ex/Ei carrier: fired when given the CPU
	preemptEv  *sysc.Event // asks the thread to yield at its next preemption point

	// Continuation engine: the coroutine driving a compiled body, the body
	// machine itself, and the saved frames of in-flight resumable
	// primitives (see step.go). nil/zero for goroutine-backed threads.
	co       *sysc.Coro
	compiled CompiledBody
	crInBody bool // the compiled body is mid-cycle
	cs       consumeState
	bs       blockPhase

	state      State
	suspCount  int    // forced-suspension nesting (tk_sus_tsk)
	terminated bool   // reset request: unwind body to the top of the cycle
	waitObj    string // what the thread is waiting on (for DS listings)
	relCode    error  // wait release code delivered by Release
	actCount   int    // queued activation requests

	// Latched release for the decide-to-block window (see Release).
	pendingRel    error
	hasPendingRel bool

	exinf any // user extended information (µITRON exinf)

	ready ReadyNode // intrusive ready-queue link (owned by the scheduler)

	net    *petri.Net
	seq    *petri.FiringSequence
	acc    petri.Accumulator
	lastCV []int // characteristic vector of the last completed cycle
}

// --- registry-facing accessors (SIM_HashTB record fields) ---

// ID returns the registry identifier assigned at creation.
func (t *TThread) ID() int { return t.id }

// Name returns the thread's name.
func (t *TThread) Name() string { return t.name }

// Kind returns the embedded-software object kind the thread wraps.
func (t *TThread) Kind() Kind { return t.kind }

// State returns the current scheduling state.
func (t *TThread) State() State { return t.state }

// Priority returns the current (possibly boosted) priority.
func (t *TThread) Priority() int { return t.priority }

// BasePriority returns the priority assigned at creation/last change,
// ignoring temporary boosts (mutex priority inheritance).
func (t *TThread) BasePriority() int { return t.basePriority }

// WaitObject names the kernel object the thread is blocked on ("" if none).
func (t *TThread) WaitObject() string { return t.waitObj }

// SetWaitObject relabels the wait object of a blocked thread (used when a
// wait's nature changes mid-block, e.g. a rendezvous call that has been
// accepted now waits for the reply).
func (t *TThread) SetWaitObject(obj string) {
	if t.state == StateWaiting || t.state == StateWaitSuspended {
		t.waitObj = obj
	}
}

// SuspendCount returns the forced-suspension nesting depth.
func (t *TThread) SuspendCount() int { return t.suspCount }

// SetExinf attaches user extended information to the thread.
func (t *TThread) SetExinf(v any) { t.exinf = v }

// Exinf returns the user extended information.
func (t *TThread) Exinf() any { return t.exinf }

// CET returns the consumed execution time accumulated over all cycles.
func (t *TThread) CET() sysc.Time { return t.acc.CET }

// CEE returns the consumed execution energy accumulated over all cycles.
func (t *TThread) CEE() Energy { return t.acc.CEE }

// Cycles returns the number of completed execution cycles (activations).
func (t *TThread) Cycles() int { return t.acc.Cycles }

// CharacteristicVector returns S̄ of the last completed firing sequence:
// per-transition firing counts of one execution cycle.
func (t *TThread) CharacteristicVector() []int {
	out := make([]int, len(t.lastCV))
	copy(out, t.lastCV)
	return out
}

// Sim returns the owning sysc simulator.
func (t *TThread) Sim() *sysc.Simulator { return t.api.sim }

// Now returns the current simulation time.
func (t *TThread) Now() sysc.Time { return t.api.sim.Now() }

// API returns the owning SIM_API library.
func (t *TThread) API() *SimAPI { return t.api }

// Net exposes the underlying Petri net (read-only use: markings, structure).
func (t *TThread) Net() *petri.Net { return t.net }

// tokenPlace returns the index of the place currently holding the token.
func (t *TThread) tokenPlace() int {
	for i, p := range t.net.Places {
		if p.Tokens > 0 {
			return i
		}
	}
	return -1
}

// fire fires transition idx and records it in the current firing sequence.
// A fire that is not enabled is a broken execution-semantics invariant.
func (t *TThread) fire(idx int, cost Cost) {
	tr := t.net.Transitions[idx]
	if err := t.net.Fire(tr); err != nil {
		panic(fmt.Sprintf("core: T-THREAD %q: %v (state %v, token at %d)",
			t.name, err, t.state, t.tokenPlace()))
	}
	t.seq.Record(tr, cost)
	if a := t.api; a.bus.Wants(event.KindToken) {
		a.bus.Publish(event.Event{
			Kind: event.KindToken, Time: a.sim.Now(),
			Thread: t.name, Code: idx, Obj: tr.Name,
		})
	}
}

// pauseFire moves the token running->ready if it is at running (used when
// the thread is scheduled out by preemption, interruption, or forced
// suspension; tolerant because a freshly dispatched thread may be paused
// again before executing a single step).
func (t *TThread) pauseFire() {
	if t.tokenPlace() == plRunning {
		t.fire(trPx, Cost{})
	}
}

// resumeFire moves the token back to running: Es from dormant (startup) or
// Ex/Ei from ready (redispatch).
func (t *TThread) resumeFire() {
	switch t.tokenPlace() {
	case plDormant:
		t.fire(trEs, Cost{})
	case plReady:
		t.fire(trEx, Cost{})
	}
}

// ownsCPU reports whether the thread currently owns the processor: the top
// of the interrupt stack if any handler is active, the current task
// otherwise.
func (t *TThread) ownsCPU() bool {
	a := t.api
	if n := len(a.istack); n > 0 {
		return a.istack[n-1] == t
	}
	return a.current == t
}

// waitForCPU parks the thread's sysc process until it owns the CPU again.
// Flags are re-checked before every sleep so a terminate/reset raised just
// before parking is never lost.
func (t *TThread) waitForCPU() {
	for {
		if t.terminated {
			panic(resetSignal{})
		}
		if t.ownsCPU() {
			return
		}
		t.th.WaitEvent(t.dispatchEv)
	}
}

// AwaitCPU parks the thread until it owns the processor. Kernel layers call
// it before taking the dispatch lock at a service-call entry: a task that
// was preempted in the zero-time window between two annotated steps must
// not begin a new atomic service body until it is dispatched again —
// otherwise it would disable dispatching while parked and deadlock the
// system.
func (t *TThread) AwaitCPU() { t.waitForCPU() }

// Consume is SIM_Wait: the thread consumes cost.Time of execution time and
// cost.Energy of energy in the given context. The wait is a preemption
// point: if the thread is preempted or interrupted partway, the consumed
// fraction of time and energy is charged pro rata, a trace segment is
// emitted, and the thread suspends until it is dispatched again, then
// resumes the remaining budget. Completion fires one Ec transition.
//
// Consume must be called from within the thread's own body. Compiled
// (continuation-engine) bodies cannot park inside an opaque closure: code
// reaching here from one belongs in a Work op or an AtomIo fallback body.
func (t *TThread) Consume(cost Cost, ctx trace.Context, note string) {
	if t.th == nil {
		panic(fmt.Sprintf("core: thread %q: Consume from a compiled body outside a Work op (mark the enclosing atom AtomIo)", t.name))
	}
	if t.api.consumeShaper != nil {
		cost = t.api.consumeShaper(t, cost, ctx)
	}
	t.waitForCPU()
	total := cost.Time
	remaining := total
	if remaining <= 0 {
		// Zero-time step: record the marker and the energy, fire Ec.
		t.charge(t.th.Now(), t.th.Now(), cost.Energy, ctx, note)
		t.fire(trEc, cost)
		return
	}
	for remaining > 0 {
		start := t.th.Now()
		_, timedOut := t.th.WaitTimeout(remaining, t.preemptEv)
		consumed := t.th.Now() - start
		if consumed > 0 || timedOut {
			frac := float64(consumed) / float64(total)
			t.charge(start, start+consumed, Energy(float64(cost.Energy)*frac), ctx, note)
			remaining -= consumed
		}
		if timedOut {
			break
		}
		if t.terminated {
			panic(resetSignal{})
		}
		t.waitForCPU()
	}
	// The step may have completed at the same instant the thread was
	// scheduled out; the Ec transition fires once it owns the CPU again.
	t.waitForCPU()
	t.fire(trEc, cost)
}

// Exit ends the current execution cycle from within the thread's own body
// (tk_ext_tsk): termination bookkeeping is performed and the body unwinds
// immediately. It never returns.
func (t *TThread) Exit() {
	_ = t.api.Terminate(t)
	panic(resetSignal{})
}

// charge books a completed run slice into the thread statistics and
// publishes it on the event bus (where the Gantt recorder, the Perfetto
// exporter and the metrics collector subscribe).
func (t *TThread) charge(start, end sysc.Time, e Energy, ctx trace.Context, note string) {
	t.acc.AddCost(Cost{Time: end - start, Energy: e})
	a := t.api
	a.busy += end - start
	if a.bus.Wants(event.KindRunSlice) {
		a.bus.Publish(event.Event{
			Kind: event.KindRunSlice, Time: end, Start: start,
			Thread: t.name, Ctx: uint8(ctx), Energy: petri.Energy(e), Obj: note,
		})
	}
}

// cycleEnd performs end-of-cycle bookkeeping when the body returns or the
// thread is reset: store the characteristic vector and reset the sequence.
func (t *TThread) cycleEnd() {
	t.lastCV = t.seq.AppendCharacteristicVector(t.lastCV)
	t.acc.Cycles++
	t.seq.Reset()
}

// run is the sysc process wrapping the cyclic T-THREAD object.
func (t *TThread) run(th *sysc.Thread) {
	t.th = th
	for {
		// Park until dispatched for a new cycle (Es).
		t.safeWaitForCPU(th)
		t.execBody()
		if t.terminated {
			// Reset path: Terminate already performed the bookkeeping
			// (including the terminate transition, so it lands in this
			// cycle's firing sequence).
			t.terminated = false
			t.cycleEnd()
			continue
		}
		// Exit bookkeeping fires the exit transition before the cycle's
		// firing sequence is snapshotted.
		t.api.threadExited(t)
		t.cycleEnd()
	}
}

// safeWaitForCPU parks for dispatch at the top of the cycle, absorbing
// reset signals (a terminate aimed at an already-dormant thread).
func (t *TThread) safeWaitForCPU(th *sysc.Thread) {
	for {
		if t.ownsCPU() && !t.terminated {
			return
		}
		t.terminated = false
		th.WaitEvent(t.dispatchEv)
	}
}

// execBody runs one cycle of the body, converting reset signals into a
// normal return with t.terminated still set.
func (t *TThread) execBody() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(resetSignal); ok {
				return
			}
			panic(r)
		}
	}()
	t.body(t)
}

// String summarizes the thread for diagnostics.
func (t *TThread) String() string {
	return fmt.Sprintf("T-THREAD %d %q kind=%v prio=%d state=%v CET=%v CEE=%v",
		t.id, t.name, t.kind, t.priority, t.state, t.CET(), t.CEE())
}
