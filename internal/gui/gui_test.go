package gui_test

import (
	"strings"
	"testing"

	"repro/internal/bfm"
	"repro/internal/core"
	"repro/internal/gui"
	"repro/internal/petri"
	"repro/internal/sched"
	"repro/internal/sysc"
	"repro/internal/trace"
)

func TestLCDWidgetRefreshOnDeviceWrite(t *testing.T) {
	m := gui.NewManager(true)
	lcd := bfm.NewLCD(2, 16)
	w := gui.NewLCDWidget(m, lcd)
	lcd.PortWrite('A')
	lcd.PortWrite('B')
	if m.Refreshes() != 2 {
		t.Fatalf("refreshes = %d", m.Refreshes())
	}
	if !strings.Contains(w.RenderText(), "AB") {
		t.Fatalf("render:\n%s", w.RenderText())
	}
	if m.RasterChecksum() == 0 {
		t.Fatal("no raster work done")
	}
}

func TestDisabledGUIDoesNoRasterWork(t *testing.T) {
	m := gui.NewManager(false)
	lcd := bfm.NewLCD(2, 16)
	gui.NewLCDWidget(m, lcd)
	lcd.PortWrite('A')
	if m.Refreshes() != 1 {
		t.Fatalf("refresh not counted: %d", m.Refreshes())
	}
	if m.RasterChecksum() != 0 {
		t.Fatal("disabled GUI did raster work")
	}
}

func TestSSDWidget(t *testing.T) {
	m := gui.NewManager(true)
	ssd := bfm.NewSSD()
	w := gui.NewSSDWidget(m, ssd)
	ssd.PortWrite(0x07)
	if !strings.Contains(w.RenderText(), "7") {
		t.Fatalf("render = %q", w.RenderText())
	}
	if m.Refreshes() != 1 {
		t.Fatalf("refreshes = %d", m.Refreshes())
	}
}

func TestKeypadWidgetClick(t *testing.T) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	b := bfm.New(sim, nil, bfm.DefaultConfig())
	raised := 0
	b.IntC.SetSink(func(int) { raised++ })
	b.IntC.EnableLine(bfm.KeypadIntLine)
	pad := bfm.NewKeypad(b.IntC)
	m := gui.NewManager(true)
	w := gui.NewKeypadWidget(m, pad)
	w.Click(9)
	if raised != 1 {
		t.Fatalf("interrupts = %d", raised)
	}
	if pad.PortRead() != 9 {
		t.Fatalf("key = %d", pad.PortRead())
	}
	if !strings.Contains(w.RenderText(), "[5]") {
		t.Fatal("keypad face malformed")
	}
}

func TestBatteryWidgetDepletion(t *testing.T) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	api := core.NewSimAPI(sim, sched.NewPriority(), nil)
	m := gui.NewManager(true)
	// Tiny capacity so consumption is visible.
	w := gui.NewBatteryWidget(m, api, 10*petri.MilliJ)
	task := api.CreateThread("t", core.KindTask, 1, func(tt *core.TThread) {
		tt.Consume(core.Cost{Time: sysc.Ms, Energy: 4 * petri.MilliJ}, trace.CtxTask, "")
	})
	_ = api.Activate(task)
	if err := sim.Start(10 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if w.Consumed() != 4*petri.MilliJ {
		t.Fatalf("consumed = %v", w.Consumed())
	}
	if p := w.Percent(); p < 59 || p > 61 {
		t.Fatalf("percent = %v, want ~60", p)
	}
	life, ok := w.Lifespan(10 * sysc.Ms)
	if !ok || life != 25*sysc.Ms {
		t.Fatalf("lifespan = %v %v, want 25 ms", life, ok)
	}
	if !strings.Contains(w.RenderText(), "BATTERY [") {
		t.Fatal("render malformed")
	}
}

func TestBatteryWidgetFloorsAtZero(t *testing.T) {
	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	api := core.NewSimAPI(sim, sched.NewPriority(), nil)
	m := gui.NewManager(false)
	w := gui.NewBatteryWidget(m, api, 1*petri.MicroJ)
	task := api.CreateThread("t", core.KindTask, 1, func(tt *core.TThread) {
		tt.Consume(core.Cost{Time: sysc.Ms, Energy: petri.Joule}, trace.CtxTask, "")
	})
	_ = api.Activate(task)
	if err := sim.Start(10 * sysc.Ms); err != nil {
		t.Fatal(err)
	}
	if w.Remaining() != 0 || w.Percent() != 0 {
		t.Fatalf("remaining = %v, pct = %v", w.Remaining(), w.Percent())
	}
}

func TestTraceWidgetWindow(t *testing.T) {
	g := trace.NewGantt()
	g.Add(trace.Segment{Thread: "t1", Start: 0, End: 10 * sysc.Ms, Ctx: trace.CtxTask})
	g.Add(trace.Segment{Thread: "t2", Start: 10 * sysc.Ms, End: 20 * sysc.Ms, Ctx: trace.CtxHandler})
	m := gui.NewManager(true)
	w := gui.NewTraceWidget(m, g, 50*sysc.Ms)
	out := w.RenderText()
	if !strings.Contains(out, "t1") || !strings.Contains(out, "t2") {
		t.Fatalf("trace widget:\n%s", out)
	}
	var b strings.Builder
	w.Dump(&b)
	if b.Len() == 0 {
		t.Fatal("dump empty")
	}
}

func TestManagerModes(t *testing.T) {
	m := gui.NewManager(true)
	if m.Mode() != gui.Animate {
		t.Fatal("default mode should be animate")
	}
	m.SetMode(gui.Step)
	if m.Mode() != gui.Step {
		t.Fatal("mode not set")
	}
}

func TestRefreshAll(t *testing.T) {
	m := gui.NewManager(true)
	gui.NewLCDWidget(m, bfm.NewLCD(2, 16))
	gui.NewSSDWidget(m, bfm.NewSSD())
	m.RefreshAll()
	if m.Refreshes() != 2 {
		t.Fatalf("refreshes = %d", m.Refreshes())
	}
}
