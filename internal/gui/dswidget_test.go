package gui_test

import (
	"strings"
	"testing"

	"repro/internal/gui"
)

func TestDSWidgetRendersProducer(t *testing.T) {
	m := gui.NewManager(true)
	calls := 0
	w := gui.NewDSWidget(m, func() string {
		calls++
		return "== TASK ==\n1 T1 RUNNING"
	})
	out := w.RenderText()
	if !strings.Contains(out, "RUNNING") || calls != 1 {
		t.Fatalf("out=%q calls=%d", out, calls)
	}
	m.Refresh(w)
	if m.Refreshes() != 1 {
		t.Fatalf("refreshes = %d", m.Refreshes())
	}
	if w.Name() != "ds-widget" {
		t.Fatalf("name = %q", w.Name())
	}
}
