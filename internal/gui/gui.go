// Package gui is the virtual-prototype widget layer of the case study: GUI
// widgets wrap the H/W peripherals to give the look & feel of a virtual
// system prototype, capture user events (key presses), and display run-time
// statistics (execution time/energy trace, consumed time/energy
// distribution with a battery status bar, T-Kernel/DS listings).
//
// Substitution note (see DESIGN.md): the paper used real Tcl/Tk-style
// widgets whose callback work loaded the host CPU and halved co-simulation
// speed at the maximum BFM access rate. This package reproduces that load
// with a deterministic synthetic rasterizer: every widget refresh renders
// the widget into an off-screen text framebuffer WorkFactor times. The
// refresh rate is driven by BFM accesses to the wrapped peripheral exactly
// as in the paper, so Table 2's knob (a BFM access driving a GUI widget
// every N ms) is reproduced faithfully.
package gui

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/bfm"
	"repro/internal/core"
	"repro/internal/petri"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// Mode selects the display mode of the paper: step mode advances the
// simulation one system tick at a time (trace widgets usable), animate mode
// free-runs (distribution widgets usable).
type Mode int

// Display modes.
const (
	Animate Mode = iota
	Step
)

// Widget is a GUI element wrapping a data source.
type Widget interface {
	// Name identifies the widget.
	Name() string
	// RenderText draws the widget as text (the synthetic framebuffer).
	RenderText() string
}

// Manager owns the widgets and models the GUI host overhead.
type Manager struct {
	widgets    []Widget
	enabled    bool
	mode       Mode
	WorkFactor int // synthetic raster passes per refresh

	refreshes uint64
	rasterSum uint64 // checksum of rasterized cells (defeats dead-code elim)
}

// NewManager creates a GUI manager. enabled=false models the paper's
// "without GUI overhead" configuration: widgets still exist but refreshes
// do no raster work.
func NewManager(enabled bool) *Manager {
	return &Manager{enabled: enabled, WorkFactor: 40}
}

// Add registers a widget.
func (m *Manager) Add(w Widget) { m.widgets = append(m.widgets, w) }

// Enabled reports whether GUI overhead is modelled.
func (m *Manager) Enabled() bool { return m.enabled }

// SetMode selects step or animate mode.
func (m *Manager) SetMode(mode Mode) { m.mode = mode }

// Mode returns the current display mode.
func (m *Manager) Mode() Mode { return m.mode }

// Refreshes returns the number of widget refreshes performed.
func (m *Manager) Refreshes() uint64 { return m.refreshes }

// Refresh redraws one widget, consuming real host CPU proportional to
// WorkFactor — the GUI callback overhead of the paper.
func (m *Manager) Refresh(w Widget) {
	m.refreshes++
	if !m.enabled {
		return
	}
	text := w.RenderText()
	// Deterministic synthetic raster: blit the text into a cell buffer
	// WorkFactor times, accumulating a checksum so the work is not
	// eliminated.
	var sum uint64
	for pass := 0; pass < m.WorkFactor; pass++ {
		for i := 0; i < len(text); i++ {
			sum = sum*1099511628211 + uint64(text[i]) + uint64(pass)
		}
	}
	m.rasterSum += sum
}

// RefreshAll redraws every widget (frame update in animate mode).
func (m *Manager) RefreshAll() {
	for _, w := range m.widgets {
		m.Refresh(w)
	}
}

// RasterChecksum exposes the accumulated raster checksum (tests).
func (m *Manager) RasterChecksum() uint64 { return m.rasterSum }

// LCDWidget wraps the LCD peripheral; BFM writes to the device drive its
// refresh, as in the paper's "maximum BFM access driving a GUI widget".
type LCDWidget struct {
	lcd *bfm.LCD
	m   *Manager
}

// NewLCDWidget wires the widget to the device's observer hook.
func NewLCDWidget(m *Manager, lcd *bfm.LCD) *LCDWidget {
	w := &LCDWidget{lcd: lcd, m: m}
	lcd.SetObserver(func() { m.Refresh(w) })
	m.Add(w)
	return w
}

// Name implements Widget.
func (w *LCDWidget) Name() string { return "lcd-widget" }

// RenderText implements Widget: the LCD glass with a frame.
func (w *LCDWidget) RenderText() string {
	lines := strings.Split(w.lcd.Render(), "\n")
	var b strings.Builder
	b.WriteString("+----------------+\n")
	for _, l := range lines {
		fmt.Fprintf(&b, "|%-16s|\n", l)
	}
	b.WriteString("+----------------+")
	return b.String()
}

// SSDWidget wraps the seven-segment display.
type SSDWidget struct {
	ssd *bfm.SSD
	m   *Manager
}

// NewSSDWidget wires the widget to the device.
func NewSSDWidget(m *Manager, ssd *bfm.SSD) *SSDWidget {
	w := &SSDWidget{ssd: ssd, m: m}
	ssd.SetObserver(func() { m.Refresh(w) })
	m.Add(w)
	return w
}

// Name implements Widget.
func (w *SSDWidget) Name() string { return "ssd-widget" }

// RenderText implements Widget.
func (w *SSDWidget) RenderText() string {
	return "[" + w.ssd.Render() + "]"
}

// KeypadWidget captures user events and injects them into the keypad
// peripheral (which raises INT0).
type KeypadWidget struct {
	pad *bfm.Keypad
	m   *Manager
}

// NewKeypadWidget creates the input widget.
func NewKeypadWidget(m *Manager, pad *bfm.Keypad) *KeypadWidget {
	w := &KeypadWidget{pad: pad, m: m}
	m.Add(w)
	return w
}

// Name implements Widget.
func (w *KeypadWidget) Name() string { return "keypad-widget" }

// Click models the user pressing a key in the GUI.
func (w *KeypadWidget) Click(key byte) {
	w.pad.Press(key)
	w.m.Refresh(w)
}

// RenderText implements Widget.
func (w *KeypadWidget) RenderText() string {
	return "[1][2][3][A]\n[4][5][6][B]\n[7][8][9][C]\n[*][0][#][D]"
}

// BatteryWidget is the Time/Energy distribution widget of Figure 7: a
// battery of a given capacity (the paper assumed 10 watt-hour) is depleted
// at run time as consumed execution energy accumulates across registered
// T-THREADs; the status bar and the projected lifespan update live.
type BatteryWidget struct {
	api      *core.SimAPI
	capacity petri.Energy
	m        *Manager
}

// NewBatteryWidget attaches the battery to the SIM_API energy statistics.
func NewBatteryWidget(m *Manager, api *core.SimAPI, capacity petri.Energy) *BatteryWidget {
	w := &BatteryWidget{api: api, capacity: capacity, m: m}
	m.Add(w)
	return w
}

// Name implements Widget.
func (w *BatteryWidget) Name() string { return "battery-widget" }

// Consumed returns the total CEE across all T-THREADs.
func (w *BatteryWidget) Consumed() petri.Energy { return w.api.TotalCEE() }

// Remaining returns the remaining battery energy (floored at zero).
func (w *BatteryWidget) Remaining() petri.Energy {
	r := w.capacity - w.Consumed()
	if r < 0 {
		return 0
	}
	return r
}

// Percent returns the state of charge in percent.
func (w *BatteryWidget) Percent() float64 {
	if w.capacity <= 0 {
		return 0
	}
	return 100 * w.Remaining().Joules() / w.capacity.Joules()
}

// Lifespan projects the battery's total lifetime for the observed average
// power: elapsed × capacity / consumed. ok is false before any consumption.
func (w *BatteryWidget) Lifespan(elapsed sysc.Time) (sysc.Time, bool) {
	c := w.Consumed()
	if c <= 0 || elapsed <= 0 {
		return 0, false
	}
	life := float64(elapsed) * w.capacity.Joules() / c.Joules()
	if life >= float64(sysc.MaxTime) {
		return sysc.MaxTime, true
	}
	return sysc.Time(life), true
}

// RenderText implements Widget: a status bar plus the per-thread
// distribution table.
func (w *BatteryWidget) RenderText() string {
	var b strings.Builder
	pct := w.Percent()
	cells := int(pct / 5)
	fmt.Fprintf(&b, "BATTERY [%s%s] %5.1f%%  (%v of %v)\n",
		strings.Repeat("#", cells), strings.Repeat(".", 20-cells), pct,
		w.Remaining(), w.capacity)
	w.api.EnergyReport(&b)
	return b.String()
}

// DSWidget displays a live kernel-state listing (the paper's "tracing
// T-kernel internal states and resource usage using T-Kernel/DS functions"
// debugging widget). It wraps any function producing the listing text, so
// the gui package stays decoupled from the debugger layer.
type DSWidget struct {
	render func() string
	m      *Manager
}

// NewDSWidget creates the widget over a listing producer (typically
// tkds.New(k).Snapshot or Listing into a buffer).
func NewDSWidget(m *Manager, render func() string) *DSWidget {
	w := &DSWidget{render: render, m: m}
	m.Add(w)
	return w
}

// Name implements Widget.
func (w *DSWidget) Name() string { return "ds-widget" }

// RenderText implements Widget.
func (w *DSWidget) RenderText() string { return w.render() }

// TraceWidget is the Execution Time/Energy Trace widget of Figure 6
// (available in step mode): it renders the GANTT window around the current
// time, with per-context patterns.
type TraceWidget struct {
	g      *trace.Gantt
	window sysc.Time
	m      *Manager
}

// NewTraceWidget creates the trace display over a recorder.
func NewTraceWidget(m *Manager, g *trace.Gantt, window sysc.Time) *TraceWidget {
	w := &TraceWidget{g: g, window: window, m: m}
	m.Add(w)
	return w
}

// Name implements Widget.
func (w *TraceWidget) Name() string { return "trace-widget" }

// RenderAt draws the window ending at the given time.
func (w *TraceWidget) RenderAt(now sysc.Time) string {
	from := now - w.window
	if from < 0 {
		from = 0
	}
	var b strings.Builder
	w.g.Render(&b, from, now, 80)
	return b.String()
}

// RenderText implements Widget: the most recent window.
func (w *TraceWidget) RenderText() string {
	var to sysc.Time
	for _, s := range w.g.Segments {
		if s.End > to {
			to = s.End
		}
	}
	return w.RenderAt(to)
}

// Dump writes the current view to a sink.
func (w *TraceWidget) Dump(out io.Writer) {
	fmt.Fprintln(out, w.RenderText())
}
