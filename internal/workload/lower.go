package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/run/opts"
	"repro/internal/sweep"
	"repro/internal/sysc"
	"repro/internal/tkernel"
)

// Object defaults applied at lowering (zero values in the DSL).
const (
	defaultSemMax    = 1 << 30
	defaultMbfBufSz  = 256
	defaultMbfMaxMsg = 32
)

// arrivalStreamBase is the first sweep.Seed stream index used for interrupt
// device models: source i draws its interarrival gaps from stream
// arrivalStreamBase+i of the run seed. Streams 0–2 belong to the app /
// chaos schedule / generator; keeping the device streams well clear means a
// TaskSet replays identical interrupt schedules regardless of what else the
// run draws.
const arrivalStreamBase = 16

// Instance is a TaskSet lowered onto a live kernel: the created object IDs
// plus run counters.
type Instance struct {
	TS *TaskSet

	// TaskIDs etc. hold the kernel IDs in declaration order.
	TaskIDs     []tkernel.ID
	SemIDs      []tkernel.ID
	MtxIDs      []tkernel.ID
	MbfIDs      []tkernel.ID
	FlgIDs      []tkernel.ID
	CycIDs      []tkernel.ID
	AlmIDs      []tkernel.ID
	RelIDs      []tkernel.ID // implicit release cyclics of periodic tasks
	IntNos      []int
	activations uint64

	// Snapshot retention: the mutable cells task programs and device models
	// write through, kept addressable so internal/snapshot can capture and
	// restore them (see state.go).
	scratches  []*opScratch // per task, declaration order
	samplers   []*sampler   // per interrupt source, declaration order
	devStarted []*bool      // device-coro frame flags; nil on the goroutine engine
}

// Activations returns the total completed task-body activations, the
// synthetic-scenario liveness counter.
func (in *Instance) Activations() uint64 { return in.activations }

// Build lowers a validated TaskSet onto the kernel: it boots k, creating
// every sync object, task, handler and interrupt definition inside the INIT
// context, then spawns one seeded device-model process per interrupt
// source. ts must have passed Validate; Build panics on kernel errors since
// a validated set cannot produce any.
//
// The caller starts the simulator afterwards; everything that happens from
// then on — including Poisson/Gamma interrupt schedules — is a pure
// function of (ts, seed) and identical on both T-THREAD engines.
func Build(sim *sysc.Simulator, k *tkernel.Kernel, ts *TaskSet, seed uint64) *Instance {
	in := &Instance{TS: ts}

	k.Boot(func(k *tkernel.Kernel) {
		for _, s := range ts.Sems {
			attr := tkernel.TaTFIFO
			if s.PrioOrder {
				attr = tkernel.TaTPRI
			}
			max := s.Max
			if max == 0 {
				max = defaultSemMax
			}
			id, er := k.CreSem("wl."+s.Name, attr, s.Init, max)
			must(er, "cre_sem", s.Name)
			in.SemIDs = append(in.SemIDs, id)
		}
		for _, f := range ts.Flags {
			id, er := k.CreFlg("wl."+f.Name, tkernel.TaWMUL, f.Init)
			must(er, "cre_flg", f.Name)
			in.FlgIDs = append(in.FlgIDs, id)
		}
		for _, m := range ts.Mutexes {
			attr := tkernel.TaTPRI
			ceil := 0
			switch m.Policy {
			case "", PolicyInherit:
				attr = tkernel.TaInherit
			case PolicyCeiling:
				attr = tkernel.TaCeiling
				ceil = m.Ceiling
			}
			id, er := k.CreMtx("wl."+m.Name, attr, ceil)
			must(er, "cre_mtx", m.Name)
			in.MtxIDs = append(in.MtxIDs, id)
		}
		for _, b := range ts.Mbfs {
			attr := tkernel.TaMFIFO
			if b.PrioOrder {
				attr = tkernel.TaMPRI
			}
			bufsz, maxmsg := b.BufSz, b.MaxMsg
			if bufsz == 0 {
				bufsz = defaultMbfBufSz
			}
			if maxmsg == 0 {
				maxmsg = defaultMbfMaxMsg
			}
			id, er := k.CreMbf("wl."+b.Name, attr, bufsz, maxmsg)
			must(er, "cre_mbf", b.Name)
			in.MbfIDs = append(in.MbfIDs, id)
		}

		// Tasks. IDs land in declaration order before any handler program
		// references them (wup_tsk pointers resolve at execution time).
		in.TaskIDs = make([]tkernel.ID, len(ts.Tasks))
		for ti := range ts.Tasks {
			t := &ts.Tasks[ti]
			prog := in.buildTaskProgram(k, t)
			id, er := k.CreTskProg("wl."+t.Name, t.Priority, prog)
			must(er, "cre_tsk", t.Name)
			in.TaskIDs[ti] = id
			must(k.StaTsk(id), "sta_tsk", t.Name)
		}

		// Implicit release cyclics: one per periodic task, waking it every
		// Period (first release at Offset, or at Period when Offset is 0 —
		// the kernel's phase convention).
		for ti := range ts.Tasks {
			t := &ts.Tasks[ti]
			if t.Period == 0 {
				continue
			}
			rel := k.NewHandlerProgram("wl." + t.Name + ".rel")
			rel.WupTsk(&in.TaskIDs[ti], nil)
			id, er := k.CreCycProg("wl."+t.Name+".rel", t.Period.Sim(), t.Offset.Sim(), rel)
			must(er, "cre_cyc", t.Name+".rel")
			in.RelIDs = append(in.RelIDs, id)
			must(k.StaCyc(id), "sta_cyc", t.Name+".rel")
		}

		for ci := range ts.Cyclics {
			c := &ts.Cyclics[ci]
			prog := k.NewHandlerProgram("wl." + c.Name)
			in.appendHandlerOps(k, prog, c.Ops)
			id, er := k.CreCycProg("wl."+c.Name, c.Interval.Sim(), c.Phase.Sim(), prog)
			must(er, "cre_cyc", c.Name)
			in.CycIDs = append(in.CycIDs, id)
			must(k.StaCyc(id), "sta_cyc", c.Name)
		}

		in.AlmIDs = make([]tkernel.ID, len(ts.Alarms))
		for ai := range ts.Alarms {
			a := &ts.Alarms[ai]
			prog := k.NewHandlerProgram("wl." + a.Name)
			in.appendHandlerOps(k, prog, a.Ops)
			if a.Rearm > 0 {
				// Self-rearming alarm: the trailing op re-arms through the
				// ID pointer filled in right below.
				prog.StaAlm(&in.AlmIDs[ai], a.Rearm.Sim(), nil)
			}
			id, er := k.CreAlmProg("wl."+a.Name, prog)
			must(er, "cre_alm", a.Name)
			in.AlmIDs[ai] = id
			must(k.StaAlm(id, a.Start.Sim()), "sta_alm", a.Name)
		}

		for ii := range ts.Interrupts {
			irq := &ts.Interrupts[ii]
			prog := k.NewHandlerProgram("wl." + irq.Name)
			in.appendHandlerOps(k, prog, irq.Ops)
			must(k.DefIntProg(irq.IntNo, "wl."+irq.Name, prog), "def_int", irq.Name)
			in.IntNos = append(in.IntNos, irq.IntNo)
		}
	})

	// Device models: one seeded process per interrupt source, raising it on
	// the sampled arrival schedule. Both engine variants draw gaps in the
	// same per-source order, so raise instants are engine-independent.
	for ii := range ts.Interrupts {
		irq := ts.Interrupts[ii]
		s := newSampler(irq.Arrival, sweep.NewRNG(sweep.Seed(seed, arrivalStreamBase+ii)))
		in.samplers = append(in.samplers, s)
		name := "wl.device." + irq.Name
		if k.Engine() == opts.EngineContinuation {
			started := new(bool)
			in.devStarted = append(in.devStarted, started)
			sim.SpawnCoro(name, func(c *sysc.Coro) {
				if *started {
					_ = k.RaiseInterrupt(irq.IntNo)
				}
				*started = true
				c.Wait(s.next())
			})
		} else {
			in.devStarted = append(in.devStarted, nil)
			sim.Spawn(name, func(th *sysc.Thread) {
				for {
					th.Wait(s.next())
					_ = k.RaiseInterrupt(irq.IntNo)
				}
			})
		}
	}

	return in
}

// buildTaskProgram compiles one task body. Periodic tasks sleep until the
// release cyclic wakes them (queued wakeups absorb overruns), run their op
// list once per activation and loop; aperiodic tasks loop the list freely.
func (in *Instance) buildTaskProgram(k *tkernel.Kernel, t *Task) *tkernel.Program {
	p := k.NewProgram("wl." + t.Name)
	scratch := &opScratch{}
	in.scratches = append(in.scratches, scratch)
	p.Label("loop")
	if t.Period > 0 {
		p.SlpTsk(tkernel.TmoFevr, nil)
	}
	in.appendOps(k, p, t, t.Ops, scratch)
	p.Atom(func() { in.activations++ })
	p.Jump("loop")
	return p
}

// opScratch is the per-program mutable state service ops write through.
type opScratch struct {
	er  tkernel.ER
	ptn uint32
	rcv []byte
}

// appendOps lowers a task op list. Lock failures (timeout, ceiling
// violation under a transient priority) branch past the matching unlock so
// the discipline the validator proved is preserved at run time.
func (in *Instance) appendOps(k *tkernel.Kernel, p *tkernel.Program, t *Task, ops []Op, sc *opScratch) {
	match := matchUnlocks(in.TS, ops)
	for i, op := range ops {
		switch op.Op {
		case OpConsume:
			p.Work(core.Cost{Time: op.Dur.Sim(), Energy: core.Energy(op.Energy)}, op.note(t.Name))
		case OpDlyTsk:
			p.DlyTsk(op.Dur.Sim(), nil)
		case OpSlpTsk:
			p.SlpTsk(tmo(op.Timeout), nil)
		case OpWupTsk:
			p.WupTsk(in.taskID(op.Obj), nil)
		case OpLock:
			skip := fmt.Sprintf("skip%d", match[i])
			p.LocMtx(in.mtxID(op.Obj), tmo(op.Timeout), &sc.er)
			p.Br(func() bool { return sc.er != tkernel.EOK }, skip)
		case OpUnlock:
			p.UnlMtx(in.mtxID(op.Obj), nil)
			p.Label(fmt.Sprintf("skip%d", i))
		case OpSigSem:
			p.SigSem(in.semID(op.Obj), cnt(op.Count), nil)
		case OpWaiSem:
			p.WaiSem(in.semID(op.Obj), cnt(op.Count), tmo(op.Timeout), nil)
		case OpSndMbf:
			msg := deterministicMsg(op.Size, i)
			p.SndMbf(in.mbfID(op.Obj), &msg, tmo(op.Timeout), nil)
		case OpRcvMbf:
			p.RcvMbf(in.mbfID(op.Obj), tmo(op.Timeout), &sc.rcv, nil)
		case OpSetFlg:
			p.SetFlg(in.flgID(op.Obj), op.Pattern, nil)
		case OpWaiFlg:
			p.WaiFlg(in.flgID(op.Obj), op.Pattern, flagMode(op), tmo(op.Timeout), &sc.ptn, nil)
		}
	}
}

// appendHandlerOps lowers a handler body (cyclic, alarm, interrupt): the
// validator already restricted it to the non-blocking kinds.
func (in *Instance) appendHandlerOps(k *tkernel.Kernel, p *tkernel.Program, ops []Op) {
	for _, op := range ops {
		switch op.Op {
		case OpConsume:
			p.Work(core.Cost{Time: op.Dur.Sim(), Energy: core.Energy(op.Energy)}, op.note("handler"))
		case OpSigSem:
			p.SigSem(in.semID(op.Obj), cnt(op.Count), nil)
		case OpSetFlg:
			p.SetFlg(in.flgID(op.Obj), op.Pattern, nil)
		case OpWupTsk:
			p.WupTsk(in.taskID(op.Obj), nil)
		}
	}
}

// matchUnlocks maps each OpLock index to its matching OpUnlock index, using
// the same stack walk the validator ran.
func matchUnlocks(ts *TaskSet, ops []Op) map[int]int {
	match := map[int]int{}
	var stack []int
	for i, op := range ops {
		switch op.Op {
		case OpLock:
			stack = append(stack, i)
		case OpUnlock:
			if len(stack) > 0 {
				match[stack[len(stack)-1]] = i
				stack = stack[:len(stack)-1]
			}
		}
	}
	return match
}

// note labels a consume op in traces.
func (op Op) note(owner string) string {
	return owner + ".consume"
}

// tmo maps a DSL timeout to the kernel representation: zero waits forever.
func tmo(d Duration) tkernel.TMO {
	if d == 0 {
		return tkernel.TmoFevr
	}
	return d.Sim()
}

// cnt defaults a semaphore count to 1.
func cnt(n int) int {
	if n == 0 {
		return 1
	}
	return n
}

// flagMode maps DSL wait mode + clear to kernel flag-mode bits.
func flagMode(op Op) tkernel.FlagMode {
	m := tkernel.TwfORW
	if op.Mode == ModeAnd {
		m = tkernel.TwfANDW
	}
	if op.Clear {
		m |= tkernel.TwfCLR
	}
	return m
}

// deterministicMsg builds the payload of a snd_mbf op: content is a pure
// function of (size, op index) so artifacts never depend on memory state.
func deterministicMsg(size, opIdx int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(opIdx + i)
	}
	return b
}

// ID lookups by declaration name. Validate guarantees they hit.

func (in *Instance) taskID(name string) *tkernel.ID {
	for i := range in.TS.Tasks {
		if in.TS.Tasks[i].Name == name {
			return &in.TaskIDs[i]
		}
	}
	panic("workload: unvalidated task ref " + name)
}

func (in *Instance) semID(name string) *tkernel.ID {
	for i := range in.TS.Sems {
		if in.TS.Sems[i].Name == name {
			return &in.SemIDs[i]
		}
	}
	panic("workload: unvalidated sem ref " + name)
}

func (in *Instance) mtxID(name string) *tkernel.ID {
	for i := range in.TS.Mutexes {
		if in.TS.Mutexes[i].Name == name {
			return &in.MtxIDs[i]
		}
	}
	panic("workload: unvalidated mutex ref " + name)
}

func (in *Instance) mbfID(name string) *tkernel.ID {
	for i := range in.TS.Mbfs {
		if in.TS.Mbfs[i].Name == name {
			return &in.MbfIDs[i]
		}
	}
	panic("workload: unvalidated mbf ref " + name)
}

func (in *Instance) flgID(name string) *tkernel.ID {
	for i := range in.TS.Flags {
		if in.TS.Flags[i].Name == name {
			return &in.FlgIDs[i]
		}
	}
	panic("workload: unvalidated flag ref " + name)
}

// must panics on a kernel error during lowering; Validate makes them
// impossible, so one firing means the validator and the kernel disagree.
func must(er tkernel.ER, svc, obj string) {
	if er != tkernel.EOK {
		panic(fmt.Sprintf("workload: %s(%s): %v", svc, obj, er))
	}
}
