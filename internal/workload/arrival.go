package workload

import (
	"math"

	"repro/internal/sweep"
	"repro/internal/sysc"
)

// minGap keeps sampled interarrival gaps away from zero so a heavy-tailed
// draw cannot collapse into a same-instant raise storm.
const minGap = 10 * sysc.Us

// sampler draws the next interarrival gap of one arrival process from its
// own RNG stream. Periodic processes ignore the stream entirely so their
// schedule is independent of draw order.
type sampler struct {
	a   Arrival
	rng *sweep.RNG
}

func newSampler(a Arrival, rng *sweep.RNG) *sampler {
	return &sampler{a: a, rng: rng}
}

// next returns the gap until the following arrival.
func (s *sampler) next() sysc.Time {
	mean := s.a.Period.Sim()
	var gap sysc.Time
	switch s.a.Kind {
	case ArrivalPoisson:
		gap = sysc.Time(float64(mean) * expDraw(s.rng))
	case ArrivalGamma:
		// Gamma(k, theta) with mean k*theta: draw Gamma(k, 1) and scale by
		// mean/k so the configured Period stays the mean interarrival.
		gap = sysc.Time(float64(mean) / s.a.Shape * gammaDraw(s.rng, s.a.Shape))
	default: // ArrivalPeriodic
		gap = mean
	}
	if gap < minGap {
		gap = minGap
	}
	return gap
}

// expDraw samples a unit-mean exponential via inversion.
func expDraw(rng *sweep.RNG) float64 {
	return -math.Log(1 - rng.Float64())
}

// gammaDraw samples Gamma(shape, 1) with the Marsaglia-Tsang squeeze
// method; shapes below 1 use the standard U^(1/k) boost.
func gammaDraw(rng *sweep.RNG, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaDraw(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := normDraw(rng)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// normDraw samples a standard normal via Box-Muller.
func normDraw(rng *sweep.RNG) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	v := rng.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}
