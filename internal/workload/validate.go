package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Structural caps. They bound what a hostile or fuzzed spec can make the
// lowering build, far above anything a real scenario needs.
const (
	maxTasks      = 64
	maxObjects    = 32 // per sync-object class
	maxHandlers   = 32 // cyclics + alarms
	maxInterrupts = 16
	maxOps        = 256 // per body
	maxPriority   = 140 // tkernel default MaxPriority
)

// Parse decodes and validates a JSON TaskSet. It never panics on arbitrary
// input: malformed JSON, unknown fields and invalid graphs all come back as
// descriptive errors.
func Parse(data []byte) (*TaskSet, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var ts TaskSet
	if err := dec.Decode(&ts); err != nil {
		return nil, fmt.Errorf("workload: parse: %w", err)
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return &ts, nil
}

// Validate checks the whole scenario graph — bounds, name uniqueness,
// cross-references, op arguments, lock discipline, handler restrictions —
// without building anything. A TaskSet that validates lowers onto a kernel
// without further error checks.
func (ts *TaskSet) Validate() error {
	if len(ts.Tasks) == 0 {
		return fmt.Errorf("workload: task set needs at least one task")
	}
	if len(ts.Tasks) > maxTasks {
		return fmt.Errorf("workload: %d tasks exceeds the cap of %d", len(ts.Tasks), maxTasks)
	}
	if len(ts.Sems) > maxObjects || len(ts.Mutexes) > maxObjects ||
		len(ts.Mbfs) > maxObjects || len(ts.Flags) > maxObjects {
		return fmt.Errorf("workload: more than %d sync objects in one class", maxObjects)
	}
	if len(ts.Cyclics)+len(ts.Alarms) > maxHandlers {
		return fmt.Errorf("workload: more than %d time-event handlers", maxHandlers)
	}
	if len(ts.Interrupts) > maxInterrupts {
		return fmt.Errorf("workload: more than %d interrupt sources", maxInterrupts)
	}

	names := newNameIndex()
	for i, s := range ts.Sems {
		if err := names.add("sem", s.Name); err != nil {
			return err
		}
		if s.Init < 0 || s.Max < 0 {
			return fmt.Errorf("workload: sem %q: negative init or max", s.Name)
		}
		if s.Max > 0 && s.Init > s.Max {
			return fmt.Errorf("workload: sem %q: init %d exceeds max %d", s.Name, s.Init, s.Max)
		}
		_ = i
	}
	for _, m := range ts.Mutexes {
		if err := names.add("mutex", m.Name); err != nil {
			return err
		}
		switch m.Policy {
		case "", PolicyInherit, PolicyNone:
			if m.Ceiling != 0 {
				return fmt.Errorf("workload: mutex %q: ceiling set without the ceiling policy", m.Name)
			}
		case PolicyCeiling:
			if m.Ceiling < 1 || m.Ceiling > maxPriority {
				return fmt.Errorf("workload: mutex %q: ceiling %d out of range 1..%d", m.Name, m.Ceiling, maxPriority)
			}
		default:
			return fmt.Errorf("workload: mutex %q: unknown policy %q", m.Name, m.Policy)
		}
	}
	for _, b := range ts.Mbfs {
		if err := names.add("mbf", b.Name); err != nil {
			return err
		}
		if b.BufSz < 0 || b.MaxMsg < 0 {
			return fmt.Errorf("workload: mbf %q: negative bufsz or maxmsg", b.Name)
		}
		if b.BufSz > 0 && b.MaxMsg > b.BufSz {
			return fmt.Errorf("workload: mbf %q: maxmsg %d exceeds bufsz %d", b.Name, b.MaxMsg, b.BufSz)
		}
	}
	for _, f := range ts.Flags {
		if err := names.add("flag", f.Name); err != nil {
			return err
		}
	}
	for _, t := range ts.Tasks {
		if err := names.add("task", t.Name); err != nil {
			return err
		}
	}
	for _, c := range ts.Cyclics {
		if err := names.add("cyclic", c.Name); err != nil {
			return err
		}
	}
	for _, a := range ts.Alarms {
		if err := names.add("alarm", a.Name); err != nil {
			return err
		}
	}
	seenInt := map[int]bool{}
	for _, irq := range ts.Interrupts {
		if err := names.add("interrupt", irq.Name); err != nil {
			return err
		}
		if irq.IntNo < 0 {
			return fmt.Errorf("workload: interrupt %q: negative intno %d", irq.Name, irq.IntNo)
		}
		if seenInt[irq.IntNo] {
			return fmt.Errorf("workload: interrupt %q: duplicate intno %d", irq.Name, irq.IntNo)
		}
		seenInt[irq.IntNo] = true
		if err := irq.Arrival.validate(irq.Name); err != nil {
			return err
		}
	}

	for _, t := range ts.Tasks {
		if t.Priority < 1 || t.Priority > maxPriority {
			return fmt.Errorf("workload: task %q: priority %d out of range 1..%d", t.Name, t.Priority, maxPriority)
		}
		if t.Period < 0 || t.Offset < 0 {
			return fmt.Errorf("workload: task %q: negative period or offset", t.Name)
		}
		if err := ts.validateOps("task", t.Name, t.Ops, false); err != nil {
			return err
		}
		if err := validateLockDiscipline(ts, t); err != nil {
			return err
		}
		if t.Period == 0 && !advancesTime(t.Ops) {
			return fmt.Errorf("workload: task %q: an aperiodic task needs at least one time-advancing op (consume, dly_tsk, slp_tsk or a blocking wait)", t.Name)
		}
		if t.CET != 0 {
			var sum Duration
			for _, op := range t.Ops {
				if op.Op == OpConsume {
					sum += op.Dur
				}
			}
			if sum != t.CET {
				return fmt.Errorf("workload: task %q: cet %v does not match the consume-op total %v", t.Name, t.CET.Std(), sum.Std())
			}
		}
	}
	for _, c := range ts.Cyclics {
		if c.Interval <= 0 {
			return fmt.Errorf("workload: cyclic %q: interval must be positive, got %v", c.Name, c.Interval.Std())
		}
		if c.Phase < 0 {
			return fmt.Errorf("workload: cyclic %q: negative phase", c.Name)
		}
		if err := ts.validateOps("cyclic", c.Name, c.Ops, true); err != nil {
			return err
		}
	}
	for _, a := range ts.Alarms {
		if a.Start < 0 || a.Rearm < 0 {
			return fmt.Errorf("workload: alarm %q: negative start or rearm", a.Name)
		}
		if err := ts.validateOps("alarm", a.Name, a.Ops, true); err != nil {
			return err
		}
	}
	for _, irq := range ts.Interrupts {
		if err := ts.validateOps("interrupt", irq.Name, irq.Ops, true); err != nil {
			return err
		}
	}
	return nil
}

// validate checks one arrival process.
func (a Arrival) validate(owner string) error {
	switch a.Kind {
	case ArrivalPeriodic, ArrivalPoisson:
		if a.Shape != 0 {
			return fmt.Errorf("workload: interrupt %q: shape is gamma-only", owner)
		}
	case ArrivalGamma:
		if !(a.Shape > 0) {
			return fmt.Errorf("workload: interrupt %q: gamma arrivals need shape > 0", owner)
		}
	default:
		return fmt.Errorf("workload: interrupt %q: unknown arrival kind %q", owner, a.Kind)
	}
	if a.Period <= 0 {
		return fmt.Errorf("workload: interrupt %q: arrival period must be positive, got %v", owner, a.Period.Std())
	}
	return nil
}

// validateOps checks one op list. Handler bodies (handler=true) may only
// use the non-blocking kinds.
func (ts *TaskSet) validateOps(class, owner string, ops []Op, handler bool) error {
	if len(ops) == 0 {
		return fmt.Errorf("workload: %s %q: empty op list", class, owner)
	}
	if len(ops) > maxOps {
		return fmt.Errorf("workload: %s %q: %d ops exceeds the cap of %d", class, owner, len(ops), maxOps)
	}
	where := fmt.Sprintf("%s %q", class, owner)
	for i, op := range ops {
		if op.Timeout < 0 || op.Dur < 0 {
			return fmt.Errorf("workload: %s op %d (%s): negative duration or timeout", where, i, op.Op)
		}
		if handler {
			switch op.Op {
			case OpConsume, OpSigSem, OpSetFlg, OpWupTsk:
			default:
				return fmt.Errorf("workload: %s op %d: %q is not allowed in handler context", where, i, op.Op)
			}
		}
		switch op.Op {
		case OpConsume:
			if op.Dur <= 0 {
				return fmt.Errorf("workload: %s op %d: consume needs a positive dur", where, i)
			}
			if op.Energy < 0 {
				return fmt.Errorf("workload: %s op %d: negative energy", where, i)
			}
		case OpDlyTsk:
			if op.Dur <= 0 {
				return fmt.Errorf("workload: %s op %d: dly_tsk needs a positive dur", where, i)
			}
		case OpSlpTsk:
			// Timeout 0 sleeps forever; any non-negative timeout is fine.
		case OpWupTsk:
			if !ts.hasTask(op.Obj) {
				return fmt.Errorf("workload: %s op %d: wup_tsk references unknown task %q", where, i, op.Obj)
			}
		case OpLock, OpUnlock:
			if ts.mutexIndex(op.Obj) < 0 {
				return fmt.Errorf("workload: %s op %d: %s references unknown mutex %q", where, i, op.Op, op.Obj)
			}
		case OpSigSem, OpWaiSem:
			if !ts.hasSem(op.Obj) {
				return fmt.Errorf("workload: %s op %d: %s references unknown sem %q", where, i, op.Op, op.Obj)
			}
			if op.Count < 0 {
				return fmt.Errorf("workload: %s op %d: negative sem count", where, i)
			}
		case OpSndMbf, OpRcvMbf:
			b := ts.mbf(op.Obj)
			if b == nil {
				return fmt.Errorf("workload: %s op %d: %s references unknown mbf %q", where, i, op.Op, op.Obj)
			}
			if op.Op == OpSndMbf {
				max := b.MaxMsg
				if max == 0 {
					max = defaultMbfMaxMsg
				}
				if op.Size < 1 || op.Size > max {
					return fmt.Errorf("workload: %s op %d: snd_mbf size %d out of range 1..%d for mbf %q", where, i, op.Size, max, op.Obj)
				}
			}
		case OpSetFlg, OpWaiFlg:
			if !ts.hasFlag(op.Obj) {
				return fmt.Errorf("workload: %s op %d: %s references unknown flag %q", where, i, op.Op, op.Obj)
			}
			if op.Pattern == 0 {
				return fmt.Errorf("workload: %s op %d: %s needs a non-zero pattern", where, i, op.Op)
			}
			if op.Op == OpWaiFlg {
				switch op.Mode {
				case "", ModeOr, ModeAnd:
				default:
					return fmt.Errorf("workload: %s op %d: unknown flag mode %q", where, i, op.Mode)
				}
			}
		default:
			return fmt.Errorf("workload: %s op %d: unknown op %q", where, i, op.Op)
		}
	}
	return nil
}

// validateLockDiscipline enforces the deadlock-freedom-by-construction
// rules on one task body: locks nest (every unlock names the innermost
// held mutex), every lock is released by the body's end, and nested locks
// follow the global declaration order (an inner lock must name a mutex
// declared strictly after every held one). Ceiling mutexes additionally
// require the locker's priority not to outrank the ceiling.
func validateLockDiscipline(ts *TaskSet, t Task) error {
	var stack []int
	for i, op := range t.Ops {
		switch op.Op {
		case OpLock:
			mi := ts.mutexIndex(op.Obj)
			for _, held := range stack {
				if mi <= held {
					return fmt.Errorf("workload: task %q op %d: lock %q violates the declaration-order locking protocol (already holding %q)",
						t.Name, i, op.Obj, ts.Mutexes[held].Name)
				}
			}
			m := ts.Mutexes[mi]
			if m.Policy == PolicyCeiling && t.Priority < m.Ceiling {
				return fmt.Errorf("workload: task %q op %d: priority %d outranks ceiling %d of mutex %q",
					t.Name, i, t.Priority, m.Ceiling, op.Obj)
			}
			stack = append(stack, mi)
		case OpUnlock:
			mi := ts.mutexIndex(op.Obj)
			if len(stack) == 0 || stack[len(stack)-1] != mi {
				return fmt.Errorf("workload: task %q op %d: unlock %q does not match the innermost held lock", t.Name, i, op.Obj)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) > 0 {
		return fmt.Errorf("workload: task %q: mutex %q is still held at the end of the body", t.Name, ts.Mutexes[stack[len(stack)-1]].Name)
	}
	return nil
}

// advancesTime reports whether ops contains at least one op that consumes
// or can block simulated time, so a free-running loop of them cannot spin
// within a single instant.
func advancesTime(ops []Op) bool {
	for _, op := range ops {
		switch op.Op {
		case OpConsume, OpDlyTsk, OpSlpTsk, OpWaiSem, OpWaiFlg, OpRcvMbf, OpSndMbf:
			return true
		}
	}
	return false
}

// --- name lookups ----------------------------------------------------------

type nameIndex struct{ seen map[string]string }

func newNameIndex() *nameIndex { return &nameIndex{seen: map[string]string{}} }

// add registers a declared object name; names are unique across every class
// so an op reference is never ambiguous.
func (n *nameIndex) add(class, name string) error {
	if name == "" {
		return fmt.Errorf("workload: %s with empty name", class)
	}
	if prev, ok := n.seen[name]; ok {
		return fmt.Errorf("workload: duplicate name %q (%s and %s)", name, prev, class)
	}
	n.seen[name] = class
	return nil
}

func (ts *TaskSet) hasTask(name string) bool {
	for _, t := range ts.Tasks {
		if t.Name == name {
			return true
		}
	}
	return false
}

func (ts *TaskSet) hasSem(name string) bool {
	for _, s := range ts.Sems {
		if s.Name == name {
			return true
		}
	}
	return false
}

func (ts *TaskSet) hasFlag(name string) bool {
	for _, f := range ts.Flags {
		if f.Name == name {
			return true
		}
	}
	return false
}

func (ts *TaskSet) mbf(name string) *Mbf {
	for i := range ts.Mbfs {
		if ts.Mbfs[i].Name == name {
			return &ts.Mbfs[i]
		}
	}
	return nil
}

// mutexIndex returns the declaration index of the named mutex, or -1. The
// index doubles as the global lock order.
func (ts *TaskSet) mutexIndex(name string) int {
	for i := range ts.Mutexes {
		if ts.Mutexes[i].Name == name {
			return i
		}
	}
	return -1
}
