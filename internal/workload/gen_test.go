package workload

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/sweep"
)

// TestGenerateProperties drives the generator across 50 seeds and asserts
// the contract: the draw validates, total utilization tracks the target,
// the JSON round trip is lossless, and the same seed reproduces the same
// set exactly.
func TestGenerateProperties(t *testing.T) {
	gs := GenSpec{}
	for seed := uint64(0); seed < 50; seed++ {
		ts := Generate(sweep.NewRNG(sweep.Seed(seed, 0)), gs)
		if err := ts.Validate(); err != nil {
			t.Fatalf("seed %d: generated set fails validation: %v", seed, err)
		}

		var u float64
		for _, task := range ts.Tasks {
			if task.Period <= 0 {
				t.Fatalf("seed %d: task %s not periodic", seed, task.Name)
			}
			u += float64(task.CET) / float64(task.Period)
		}
		if math.Abs(u-0.6) > 0.05 {
			t.Errorf("seed %d: total utilization %.4f, want 0.6 +/- 0.05", seed, u)
		}

		data, err := json.Marshal(ts)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		round, err := Parse(data)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if !reflect.DeepEqual(ts, round) {
			t.Errorf("seed %d: JSON round trip not lossless", seed)
		}

		again := Generate(sweep.NewRNG(sweep.Seed(seed, 0)), gs)
		if !reflect.DeepEqual(ts, again) {
			t.Errorf("seed %d: same seed produced different sets", seed)
		}
	}
}

// TestGenerateHonorsSpec exercises the non-default generator knobs.
func TestGenerateHonorsSpec(t *testing.T) {
	gs := GenSpec{
		Tasks: 12, Util: 0.8,
		PeriodMin: Duration(10 * time.Millisecond), PeriodMax: Duration(40 * time.Millisecond),
		Sems: 3, Mutexes: 2, Mbfs: -1, Flags: 2, Interrupts: 4,
	}
	ts := Generate(sweep.NewRNG(7), gs)
	if err := ts.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if len(ts.Tasks) != 12 || len(ts.Sems) != 3 || len(ts.Mutexes) != 2 ||
		len(ts.Mbfs) != 0 || len(ts.Flags) != 2 || len(ts.Interrupts) != 4 {
		t.Fatalf("object counts do not match the spec: %d tasks %d sems %d mutexes %d mbfs %d flags %d irqs",
			len(ts.Tasks), len(ts.Sems), len(ts.Mutexes), len(ts.Mbfs), len(ts.Flags), len(ts.Interrupts))
	}
	for _, task := range ts.Tasks {
		if p := task.Period.Std(); p < 10*time.Millisecond || p > 40*time.Millisecond {
			t.Errorf("task %s period %v outside 10ms..40ms", task.Name, p)
		}
	}
	var u float64
	for _, task := range ts.Tasks {
		u += float64(task.CET) / float64(task.Period)
	}
	if math.Abs(u-0.8) > 0.05 {
		t.Errorf("total utilization %.4f, want 0.8 +/- 0.05", u)
	}
}

// TestParseGenFlag covers the CLI key=value syntax.
func TestParseGenFlag(t *testing.T) {
	gs, err := ParseGenFlag("tasks=8,util=0.65,irqs=2,sems=0,pmin=2ms,pmax=20ms")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n := gs.Normalized()
	if n.Tasks != 8 || n.Util != 0.65 || n.Interrupts != 2 || n.Sems != 0 ||
		n.PeriodMin.Std() != 2*time.Millisecond || n.PeriodMax.Std() != 20*time.Millisecond {
		t.Fatalf("parsed spec wrong: %+v", n)
	}
	if _, err := ParseGenFlag(""); err != nil {
		t.Fatalf("empty flag should mean defaults: %v", err)
	}
	for _, bad := range []string{"tasks", "tasks=x", "bogus=1", "tasks=9999", "util=-1", "pmin=1s,pmax=1ms"} {
		if _, err := ParseGenFlag(bad); err == nil {
			t.Errorf("ParseGenFlag(%q) accepted, want error", bad)
		}
	}
}

// TestUUniFast checks the utilization draw sums exactly and stays
// non-negative.
func TestUUniFast(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		rng := sweep.NewRNG(seed)
		utils := uunifast(rng, 8, 0.75)
		var sum float64
		for _, u := range utils {
			if u < 0 {
				t.Fatalf("seed %d: negative utilization %v", seed, u)
			}
			sum += u
		}
		if math.Abs(sum-0.75) > 1e-9 {
			t.Fatalf("seed %d: utilizations sum to %v, want 0.75", seed, sum)
		}
	}
}
