package workload

import (
	"fmt"

	"repro/internal/sweep"
	"repro/internal/tkernel"
)

// Snapshot layer for a lowered workload: the cells that live outside the
// kernel proper but feed it — the per-task program scratch slots service
// ops write through (flag delivery patterns, received messages, error
// codes), the device models' arrival-stream RNG cursors and coroutine
// frame flags, and the activation counter. All are plain values behind
// stable pointers, so capture is a value copy and restore writes the
// values back through the same pointers the compiled programs closed
// over.

// ScratchState is the captured value of one task's scratch slots.
type ScratchState struct {
	Er  tkernel.ER
	Ptn uint32
	Rcv []byte
}

// DeviceState is the captured state of one interrupt device model.
type DeviceState struct {
	RNG     uint64 // arrival-stream cursor
	Started bool   // device-coro frame flag (continuation engine)
}

// InstanceState is the captured dynamic state of a lowered workload.
type InstanceState struct {
	Activations uint64
	Scratch     []ScratchState // per task, declaration order
	Devices     []DeviceState  // per interrupt source, declaration order
}

// SaveState captures the workload-layer dynamic state.
func (in *Instance) SaveState() *InstanceState {
	st := &InstanceState{Activations: in.activations}
	for _, sc := range in.scratches {
		st.Scratch = append(st.Scratch, ScratchState{
			Er:  sc.er,
			Ptn: sc.ptn,
			Rcv: append([]byte(nil), sc.rcv...),
		})
	}
	for i, s := range in.samplers {
		d := DeviceState{RNG: s.rng.State()}
		if i < len(in.devStarted) && in.devStarted[i] != nil {
			d.Started = *in.devStarted[i]
		}
		st.Devices = append(st.Devices, d)
	}
	return st
}

// LoadState restores a state captured from this same Instance.
func (in *Instance) LoadState(st *InstanceState) error {
	if len(st.Scratch) != len(in.scratches) || len(st.Devices) != len(in.samplers) {
		return fmt.Errorf("workload: state mismatch: captured %d scratches/%d devices, instance has %d/%d",
			len(st.Scratch), len(st.Devices), len(in.scratches), len(in.samplers))
	}
	for i, sc := range in.scratches {
		s := &st.Scratch[i]
		sc.er = s.Er
		sc.ptn = s.Ptn
		sc.rcv = append(sc.rcv[:0], s.Rcv...)
	}
	for i, s := range in.samplers {
		d := &st.Devices[i]
		s.rng.SetState(d.RNG)
		if i < len(in.devStarted) && in.devStarted[i] != nil {
			*in.devStarted[i] = d.Started
		}
	}
	in.activations = st.Activations
	return nil
}

// Reseed replaces every device model's arrival stream with a fresh one
// derived from seed — the fork point of a warm-start sweep variant. The
// cold equivalent runs the common prefix, calls Reseed at the fork time,
// and continues; a warm fork restores the prefix state and calls Reseed
// with the same seed, so both draw identical post-fork schedules.
func (in *Instance) Reseed(seed uint64) {
	for i, s := range in.samplers {
		s.rng = sweep.NewRNG(sweep.Seed(seed, arrivalStreamBase+i))
	}
}

// ScratchPtnIndex resolves a flag-delivery pointer captured by the kernel
// layer to the index of the task scratch it addresses, -1 if it is not a
// scratch slot of this instance. The binary snapshot encoder uses it to
// flatten pointers into stable indices.
func (in *Instance) ScratchPtnIndex(p *uint32) int {
	for i, sc := range in.scratches {
		if p == &sc.ptn {
			return i
		}
	}
	return -1
}

// ScratchRcvIndex resolves a message-delivery pointer to its task scratch
// index, -1 if unknown.
func (in *Instance) ScratchRcvIndex(p *[]byte) int {
	for i, sc := range in.scratches {
		if p == &sc.rcv {
			return i
		}
	}
	return -1
}
