package workload

import (
	"strings"
	"testing"
	"time"
)

func ms(n int64) Duration { return Duration(time.Duration(n) * time.Millisecond) }

// validSet is a minimal scenario that passes validation; tests mutate
// copies of it to hit one rule at a time.
func validSet() *TaskSet {
	return &TaskSet{
		Sems:    []Sem{{Name: "s"}},
		Mutexes: []Mutex{{Name: "m0"}, {Name: "m1"}},
		Flags:   []Flag{{Name: "f"}},
		Mbfs:    []Mbf{{Name: "b"}},
		Tasks: []Task{
			{Name: "t0", Priority: 5, Period: ms(10), Ops: []Op{
				{Op: OpConsume, Dur: ms(1)},
				{Op: OpLock, Obj: "m0", Timeout: ms(5)},
				{Op: OpLock, Obj: "m1", Timeout: ms(5)},
				{Op: OpConsume, Dur: ms(1)},
				{Op: OpUnlock, Obj: "m1"},
				{Op: OpUnlock, Obj: "m0"},
				{Op: OpSigSem, Obj: "s"},
			}},
			{Name: "t1", Priority: 6, Ops: []Op{
				{Op: OpWaiSem, Obj: "s", Timeout: ms(20)},
				{Op: OpWaiFlg, Obj: "f", Pattern: 1, Timeout: ms(20)},
				{Op: OpRcvMbf, Obj: "b", Timeout: ms(20)},
				{Op: OpDlyTsk, Dur: ms(2)},
			}},
		},
		Cyclics: []Cyclic{{Name: "c", Interval: ms(7), Ops: []Op{
			{Op: OpSetFlg, Obj: "f", Pattern: 1},
		}}},
		Interrupts: []Interrupt{{Name: "irq", IntNo: 1,
			Arrival: Arrival{Kind: ArrivalPoisson, Period: ms(5)},
			Ops:     []Op{{Op: OpConsume, Dur: Duration(50 * time.Microsecond)}}}},
	}
}

// TestValidateAcceptsValidSet is the baseline.
func TestValidateAcceptsValidSet(t *testing.T) {
	if err := validSet().Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
}

// TestValidateRejections drives every rejection rule and asserts each error
// is descriptive (mentions the offending object).
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		label   string
		mutate  func(*TaskSet)
		errPart string
	}{
		{"no-tasks", func(ts *TaskSet) { ts.Tasks = nil }, "at least one task"},
		{"dup-task-name", func(ts *TaskSet) { ts.Tasks[1].Name = "t0" }, "duplicate name"},
		{"dup-cross-class", func(ts *TaskSet) { ts.Sems[0].Name = "t0" }, "duplicate name"},
		{"empty-name", func(ts *TaskSet) { ts.Flags[0].Name = "" }, "empty name"},
		{"bad-priority", func(ts *TaskSet) { ts.Tasks[0].Priority = 0 }, "priority"},
		{"neg-period", func(ts *TaskSet) { ts.Tasks[0].Period = -1 }, "negative period"},
		{"zero-cyclic-interval", func(ts *TaskSet) { ts.Cyclics[0].Interval = 0 }, "interval must be positive"},
		{"zero-arrival-period", func(ts *TaskSet) { ts.Interrupts[0].Arrival.Period = 0 }, "arrival period"},
		{"bad-arrival-kind", func(ts *TaskSet) { ts.Interrupts[0].Arrival.Kind = "weibull" }, "unknown arrival kind"},
		{"gamma-no-shape", func(ts *TaskSet) { ts.Interrupts[0].Arrival.Kind = ArrivalGamma }, "shape"},
		{"shape-on-poisson", func(ts *TaskSet) { ts.Interrupts[0].Arrival.Shape = 2 }, "gamma-only"},
		{"neg-intno", func(ts *TaskSet) { ts.Interrupts[0].IntNo = -1 }, "negative intno"},
		{"dangling-sem", func(ts *TaskSet) { ts.Tasks[1].Ops[0].Obj = "nope" }, "unknown sem"},
		{"dangling-mutex", func(ts *TaskSet) { ts.Tasks[0].Ops[1].Obj = "nope" }, "unknown mutex"},
		{"dangling-flag", func(ts *TaskSet) { ts.Tasks[1].Ops[1].Obj = "nope" }, "unknown flag"},
		{"dangling-mbf", func(ts *TaskSet) { ts.Tasks[1].Ops[2].Obj = "nope" }, "unknown mbf"},
		{"unknown-op", func(ts *TaskSet) { ts.Tasks[0].Ops[0].Op = "frobnicate" }, "unknown op"},
		{"zero-consume", func(ts *TaskSet) { ts.Tasks[0].Ops[0].Dur = 0 }, "positive dur"},
		{"flag-zero-pattern", func(ts *TaskSet) { ts.Tasks[1].Ops[1].Pattern = 0 }, "non-zero pattern"},
		{"bad-flag-mode", func(ts *TaskSet) { ts.Tasks[1].Ops[1].Mode = "xor" }, "unknown flag mode"},
		{"lock-order", func(ts *TaskSet) {
			ops := ts.Tasks[0].Ops
			ops[1].Obj, ops[2].Obj = "m1", "m0"
			ops[4].Obj, ops[5].Obj = "m0", "m1"
		}, "declaration-order"},
		{"unmatched-unlock", func(ts *TaskSet) { ts.Tasks[0].Ops[4].Obj = "m0" }, "innermost held lock"},
		{"held-at-end", func(ts *TaskSet) { ts.Tasks[0].Ops = ts.Tasks[0].Ops[:5] }, "still held"},
		{"ceiling-above-locker", func(ts *TaskSet) {
			ts.Mutexes[0].Policy = PolicyCeiling
			ts.Mutexes[0].Ceiling = 20 // t0 has priority 5 < 20
		}, "outranks ceiling"},
		{"ceiling-out-of-range", func(ts *TaskSet) {
			ts.Mutexes[0].Policy = PolicyCeiling
			ts.Mutexes[0].Ceiling = 500
		}, "out of range"},
		{"ceiling-without-policy", func(ts *TaskSet) { ts.Mutexes[1].Ceiling = 5 }, "without the ceiling policy"},
		{"bad-policy", func(ts *TaskSet) { ts.Mutexes[0].Policy = "rollback" }, "unknown policy"},
		{"blocking-in-handler", func(ts *TaskSet) {
			ts.Cyclics[0].Ops = []Op{{Op: OpWaiSem, Obj: "s"}}
		}, "not allowed in handler"},
		{"spinning-aperiodic", func(ts *TaskSet) {
			ts.Tasks[1].Ops = []Op{{Op: OpSigSem, Obj: "s"}}
		}, "time-advancing"},
		{"cet-mismatch", func(ts *TaskSet) { ts.Tasks[0].CET = ms(5) }, "does not match"},
		{"snd-size-zero", func(ts *TaskSet) {
			ts.Tasks[1].Ops[2] = Op{Op: OpSndMbf, Obj: "b", Size: 0}
		}, "size"},
		{"snd-size-over", func(ts *TaskSet) {
			ts.Tasks[1].Ops[2] = Op{Op: OpSndMbf, Obj: "b", Size: 4096}
		}, "size"},
		{"sem-init-over-max", func(ts *TaskSet) { ts.Sems[0].Init = 5; ts.Sems[0].Max = 2 }, "exceeds max"},
		{"dup-intno", func(ts *TaskSet) {
			ts.Interrupts = append(ts.Interrupts, Interrupt{Name: "irq2", IntNo: 1,
				Arrival: Arrival{Kind: ArrivalPeriodic, Period: ms(5)},
				Ops:     []Op{{Op: OpConsume, Dur: ms(1)}}})
		}, "duplicate intno"},
		{"wup-unknown-task", func(ts *TaskSet) {
			ts.Cyclics[0].Ops = []Op{{Op: OpWupTsk, Obj: "ghost"}}
		}, "unknown task"},
	}
	for _, tc := range cases {
		ts := validSet()
		tc.mutate(ts)
		err := ts.Validate()
		if err == nil {
			t.Errorf("%s: accepted, want error", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %q does not mention %q", tc.label, err, tc.errPart)
		}
	}
}

// TestParseRejectsUnknownFields guards the DisallowUnknownFields contract.
func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"tasks": [], "bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
