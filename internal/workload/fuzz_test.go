package workload

import (
	"encoding/json"
	"testing"

	"repro/internal/sweep"
)

// FuzzTaskSetJSON feeds arbitrary bytes to Parse: it must never panic, and
// any set it accepts must survive a marshal/reparse round trip (i.e. Parse
// only ever returns fully validated sets).
func FuzzTaskSetJSON(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		ts := Generate(sweep.NewRNG(sweep.Seed(seed, 0)), GenSpec{})
		data, err := json.Marshal(ts)
		if err != nil {
			f.Fatalf("seed corpus: %v", err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"tasks":[{"name":"t","priority":5,"ops":[{"op":"dly_tsk","dur":"1ms"}]}]}`))
	f.Add([]byte(`{"tasks":[{"name":"t","priority":5,"ops":[{"op":"lock","obj":"m"}]}]}`))
	f.Add([]byte(`{"tasks":[],"bogus":true}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"tasks":[{"name":"t","priority":-3}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := Parse(data)
		if err != nil {
			return
		}
		round, err := json.Marshal(ts)
		if err != nil {
			t.Fatalf("accepted set fails to marshal: %v", err)
		}
		if _, err := Parse(round); err != nil {
			t.Fatalf("accepted set fails reparse: %v\n%s", err, round)
		}
	})
}
