// Package workload is the scenario DSL and synthetic task-set generator of
// the RTK-Spec TRON model: a pure-data description of an ITRON application —
// tasks with priorities, periods and execution budgets, a sync-object graph
// (semaphores, mutexes, message buffers, event flags), time-event handlers
// and stochastic interrupt sources — plus a seeded generator that draws
// random-but-valid task sets from a small parameter spec.
//
// A TaskSet is declarative and engine-agnostic: Build lowers it onto a
// kernel through the tkernel Program IR (CreTskProg / CreCycProg /
// CreAlmProg / DefIntProg), so the same set runs on the goroutine and the
// continuation T-THREAD engines with byte-identical trace and metrics
// artifacts. Everything stochastic (generator draws, Poisson/Gamma
// interrupt arrivals) comes from seeded sweep.RNG streams, so a TaskSet —
// and every artifact of its run — is a pure function of (spec, seed).
package workload

import "repro/internal/run/opts"

// Duration re-exports the spec wire representation ("250ms" JSON strings).
type Duration = opts.Duration

// Op kinds. Task bodies may use every kind; handler bodies (cyclic, alarm,
// interrupt) are restricted to the non-blocking kinds OpConsume, OpSigSem,
// OpSetFlg and OpWupTsk.
const (
	// OpConsume consumes application execution time/energy (the CET/ETM
	// annotation).
	OpConsume = "consume"
	// OpDlyTsk delays the task for Dur (tk_dly_tsk).
	OpDlyTsk = "dly_tsk"
	// OpSlpTsk sleeps until a wakeup or the timeout (tk_slp_tsk).
	OpSlpTsk = "slp_tsk"
	// OpWupTsk wakes task Obj (tk_wup_tsk).
	OpWupTsk = "wup_tsk"
	// OpLock locks mutex Obj (tk_loc_mtx). On timeout the body skips past
	// the matching OpUnlock. Locks nest by declaration order: an inner lock
	// must name a mutex declared after every mutex currently held.
	OpLock = "lock"
	// OpUnlock unlocks mutex Obj (tk_unl_mtx); must match the innermost
	// held OpLock.
	OpUnlock = "unlock"
	// OpSigSem signals semaphore Obj by Count (tk_sig_sem).
	OpSigSem = "sig_sem"
	// OpWaiSem waits on semaphore Obj for Count (tk_wai_sem).
	OpWaiSem = "wai_sem"
	// OpSndMbf sends a Size-byte message to buffer Obj (tk_snd_mbf).
	OpSndMbf = "snd_mbf"
	// OpRcvMbf receives a message from buffer Obj (tk_rcv_mbf).
	OpRcvMbf = "rcv_mbf"
	// OpSetFlg sets Pattern bits on event flag Obj (tk_set_flg).
	OpSetFlg = "set_flg"
	// OpWaiFlg waits until event flag Obj satisfies (Pattern, Mode)
	// (tk_wai_flg).
	OpWaiFlg = "wai_flg"
)

// Flag wait modes (Op.Mode of an OpWaiFlg).
const (
	// ModeOr waits until any Pattern bit is set (the default).
	ModeOr = "or"
	// ModeAnd waits until all Pattern bits are set.
	ModeAnd = "and"
)

// Arrival kinds (Arrival.Kind).
const (
	// ArrivalPeriodic fires at fixed Period intervals.
	ArrivalPeriodic = "periodic"
	// ArrivalPoisson draws exponential interarrivals with mean Period.
	ArrivalPoisson = "poisson"
	// ArrivalGamma draws Gamma(Shape) interarrivals with mean Period.
	ArrivalGamma = "gamma"
)

// Mutex policies (Mutex.Policy).
const (
	// PolicyInherit is priority inheritance (TA_INHERIT).
	PolicyInherit = "inherit"
	// PolicyCeiling is priority ceiling (TA_CEILING); Ceiling must outrank
	// (be numerically <=) every locker's priority.
	PolicyCeiling = "ceiling"
	// PolicyNone is a plain priority-queued mutex.
	PolicyNone = "none"
)

// TaskSet is a complete declarative scenario: the JSON wire format behind
// run.Spec.Synthetic. All cross-references are by name; Validate checks the
// whole graph before anything is lowered onto a kernel.
type TaskSet struct {
	// Name labels the set in summaries and generated artifacts.
	Name string `json:"name,omitempty"`

	Tasks      []Task      `json:"tasks"`
	Sems       []Sem       `json:"sems,omitempty"`
	Mutexes    []Mutex     `json:"mutexes,omitempty"`
	Mbfs       []Mbf       `json:"mbfs,omitempty"`
	Flags      []Flag      `json:"flags,omitempty"`
	Cyclics    []Cyclic    `json:"cyclics,omitempty"`
	Alarms     []Alarm     `json:"alarms,omitempty"`
	Interrupts []Interrupt `json:"interrupts,omitempty"`
}

// Task is one application task. A periodic task (Period > 0) is released by
// an implicit cyclic handler every Period (first release at Offset, or at
// Period when Offset is 0) and sleeps between activations; an aperiodic
// task (Period == 0) loops its op list freely and must therefore contain at
// least one time-advancing op.
type Task struct {
	Name     string   `json:"name"`
	Priority int      `json:"priority"`
	Period   Duration `json:"period,omitempty"`
	Offset   Duration `json:"offset,omitempty"`
	// CET, when non-zero, documents the task's execution budget per
	// activation and must equal the sum of its OpConsume durations.
	CET Duration `json:"cet,omitempty"`
	Ops []Op     `json:"ops"`
}

// Op is one body operation; which fields matter depends on Op.
type Op struct {
	Op string `json:"op"`
	// Dur is the consumed time (OpConsume) or delay (OpDlyTsk).
	Dur Duration `json:"dur,omitempty"`
	// Energy is the consumed energy in joules (OpConsume).
	Energy float64 `json:"energy,omitempty"`
	// Obj names the referenced object (sem, mutex, mbf, flag or task).
	Obj string `json:"obj,omitempty"`
	// Count is the semaphore count (OpSigSem/OpWaiSem; default 1).
	Count int `json:"count,omitempty"`
	// Size is the message size in bytes (OpSndMbf).
	Size int `json:"size,omitempty"`
	// Pattern is the flag bit pattern (OpSetFlg/OpWaiFlg).
	Pattern uint32 `json:"pattern,omitempty"`
	// Mode is the flag wait mode: ModeOr (default) or ModeAnd (OpWaiFlg).
	Mode string `json:"mode,omitempty"`
	// Clear clears the whole flag pattern on release (OpWaiFlg).
	Clear bool `json:"clear,omitempty"`
	// Timeout bounds blocking ops (waits, locks, sends/receives, sleeps).
	// Zero waits forever.
	Timeout Duration `json:"timeout,omitempty"`
}

// Sem declares a semaphore.
type Sem struct {
	Name string `json:"name"`
	Init int    `json:"init,omitempty"`
	// Max bounds the count (default 1<<30).
	Max int `json:"max,omitempty"`
	// PrioOrder queues waiters by priority instead of FIFO.
	PrioOrder bool `json:"prio_order,omitempty"`
}

// Mutex declares a mutex.
type Mutex struct {
	Name string `json:"name"`
	// Policy is PolicyInherit, PolicyCeiling or PolicyNone (default
	// PolicyInherit).
	Policy string `json:"policy,omitempty"`
	// Ceiling is the ceiling priority (PolicyCeiling only).
	Ceiling int `json:"ceiling,omitempty"`
}

// Mbf declares a message buffer.
type Mbf struct {
	Name   string `json:"name"`
	BufSz  int    `json:"bufsz,omitempty"`  // default 256
	MaxMsg int    `json:"maxmsg,omitempty"` // default 32
	// PrioOrder queues senders by priority instead of FIFO.
	PrioOrder bool `json:"prio_order,omitempty"`
}

// Flag declares an event flag (TA_WMUL: multiple waiters allowed).
type Flag struct {
	Name string `json:"name"`
	Init uint32 `json:"init,omitempty"`
}

// Cyclic declares a cyclic handler running Ops every Interval (first fire
// at Phase, or at Interval when Phase is 0).
type Cyclic struct {
	Name     string   `json:"name"`
	Interval Duration `json:"interval"`
	Phase    Duration `json:"phase,omitempty"`
	Ops      []Op     `json:"ops"`
}

// Alarm declares an alarm handler armed Start after boot. A non-zero Rearm
// re-arms the alarm that long after each firing (a self-rearming alarm);
// zero fires once.
type Alarm struct {
	Name  string   `json:"name"`
	Start Duration `json:"start"`
	Rearm Duration `json:"rearm,omitempty"`
	Ops   []Op     `json:"ops"`
}

// Interrupt declares an external interrupt source: a handler body plus the
// stochastic arrival process of a device model raising it.
type Interrupt struct {
	Name    string  `json:"name"`
	IntNo   int     `json:"intno"`
	Arrival Arrival `json:"arrival"`
	Ops     []Op    `json:"ops"`
}

// Arrival is a seeded, deterministic arrival process. The raise instants
// are a pure function of (run seed, source index, Arrival): equal specs
// replay identical interrupt schedules on either engine.
type Arrival struct {
	// Kind is ArrivalPeriodic, ArrivalPoisson or ArrivalGamma.
	Kind string `json:"kind"`
	// Period is the fixed interval (periodic) or mean interarrival
	// (poisson, gamma).
	Period Duration `json:"period"`
	// Shape is the Gamma shape parameter k > 0 (gamma only); larger k
	// means more regular arrivals.
	Shape float64 `json:"shape,omitempty"`
}
