package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/sweep"
)

// GenSpec parameterizes the synthetic task-set generator. The zero value
// means "defaults" (6 tasks, 0.6 utilization, 5–100 ms periods, one object
// per sync class, one interrupt source); a negative object count disables
// that class.
type GenSpec struct {
	// Tasks is the number of periodic tasks (default 6).
	Tasks int `json:"tasks,omitempty"`
	// Util is the total utilization UUniFast distributes (default 0.6).
	Util float64 `json:"util,omitempty"`
	// PeriodMin/PeriodMax bound the log-uniform period draw (defaults
	// 5ms / 100ms).
	PeriodMin Duration `json:"period_min,omitempty"`
	PeriodMax Duration `json:"period_max,omitempty"`
	// Sems, Mutexes, Mbfs, Flags and Interrupts count the generated
	// objects per class (default 1 each; negative disables the class).
	Sems       int `json:"sems,omitempty"`
	Mutexes    int `json:"mutexes,omitempty"`
	Mbfs       int `json:"mbfs,omitempty"`
	Flags      int `json:"flags,omitempty"`
	Interrupts int `json:"interrupts,omitempty"`
}

// normalized resolves defaults and disables.
func (gs GenSpec) Normalized() GenSpec {
	def := func(v, d int) int {
		if v == 0 {
			return d
		}
		if v < 0 {
			return 0
		}
		return v
	}
	gs.Tasks = def(gs.Tasks, 6)
	if gs.Util == 0 {
		gs.Util = 0.6
	}
	if gs.PeriodMin == 0 {
		gs.PeriodMin = Duration(5 * time.Millisecond)
	}
	if gs.PeriodMax == 0 {
		gs.PeriodMax = Duration(100 * time.Millisecond)
	}
	gs.Sems = def(gs.Sems, 1)
	gs.Mutexes = def(gs.Mutexes, 1)
	gs.Mbfs = def(gs.Mbfs, 1)
	gs.Flags = def(gs.Flags, 1)
	gs.Interrupts = def(gs.Interrupts, 1)
	return gs
}

// Validate rejects generator parameters outside the lowering caps.
func (gs GenSpec) Validate() error {
	n := gs.Normalized()
	if n.Tasks < 1 || n.Tasks > maxTasks {
		return fmt.Errorf("workload: gen: tasks %d out of range 1..%d", n.Tasks, maxTasks)
	}
	if !(n.Util > 0) || n.Util > float64(n.Tasks) {
		return fmt.Errorf("workload: gen: util %v out of range", n.Util)
	}
	if n.PeriodMin < Duration(time.Millisecond) || n.PeriodMax < n.PeriodMin {
		return fmt.Errorf("workload: gen: period range %v..%v invalid (min 1ms, max >= min)",
			n.PeriodMin.Std(), n.PeriodMax.Std())
	}
	if n.Sems > maxObjects || n.Mutexes > maxObjects || n.Mbfs > maxObjects || n.Flags > maxObjects {
		return fmt.Errorf("workload: gen: more than %d objects in one class", maxObjects)
	}
	if n.Interrupts > maxInterrupts {
		return fmt.Errorf("workload: gen: more than %d interrupts", maxInterrupts)
	}
	return nil
}

// Generate draws a random-but-valid TaskSet: UUniFast utilizations over
// log-uniform periods with rate-monotonic priorities, sync wiring that the
// validator's deadlock-freedom rules accept by construction (bounded
// timeouts, declaration-order nested locks, a supply cyclic keeping
// semaphores and flags live), and seeded stochastic interrupt sources. The
// result always passes Validate, survives a JSON round trip unchanged, and
// is a pure function of (rng state, gs).
func Generate(rng *sweep.RNG, gs GenSpec) *TaskSet {
	gs = gs.Normalized()
	n := gs.Tasks
	ts := &TaskSet{Name: fmt.Sprintf("gen-t%d-u%02.0f", n, gs.Util*100)}

	for i := 0; i < gs.Sems; i++ {
		ts.Sems = append(ts.Sems, Sem{Name: fmt.Sprintf("s%d", i), Init: 1, PrioOrder: i%2 == 0})
	}
	for i := 0; i < gs.Flags; i++ {
		ts.Flags = append(ts.Flags, Flag{Name: fmt.Sprintf("f%d", i)})
	}
	for i := 0; i < gs.Mbfs; i++ {
		ts.Mbfs = append(ts.Mbfs, Mbf{Name: fmt.Sprintf("b%d", i)})
	}

	// Periods: log-uniform on a 1 ms grid. Priorities: rate monotonic from
	// 5 downward-rank (shorter period = more urgent), ties broken by index.
	utils := uunifast(rng, n, gs.Util)
	periods := make([]Duration, n)
	for i := range periods {
		periods[i] = logUniformMs(rng, gs.PeriodMin, gs.PeriodMax)
	}
	prio := rmPriorities(periods)

	// Mutexes after priorities: a ceiling needs its lockers' minimum
	// priority. Locker sets are fixed by index arithmetic below, so compute
	// them first.
	lockersOf := func(mi int) []int {
		var l []int
		for i := 0; i < n; i++ {
			if gs.Mutexes > 0 && i%3 != 2 && i%gs.Mutexes == mi {
				l = append(l, i)
			}
		}
		return l
	}
	for mi := 0; mi < gs.Mutexes; mi++ {
		m := Mutex{Name: fmt.Sprintf("m%d", mi)}
		lockers := lockersOf(mi)
		if len(lockers) > 0 && rng.Intn(5) < 2 {
			m.Policy = PolicyCeiling
			ceil := maxPriority
			for _, li := range lockers {
				if prio[li] < ceil {
					ceil = prio[li]
				}
			}
			m.Ceiling = ceil
		} else {
			m.Policy = PolicyInherit
		}
		ts.Mutexes = append(ts.Mutexes, m)
	}

	for i := 0; i < n; i++ {
		t := Task{
			Name:     fmt.Sprintf("t%d", i),
			Priority: prio[i],
			Period:   periods[i],
			Offset:   Duration(time.Duration(rng.Intn(int(periods[i].Std()/time.Millisecond))) * time.Millisecond),
		}
		t.Ops, t.CET = genOps(rng, gs, ts, i, utils[i], periods[i])
		ts.Tasks = append(ts.Tasks, t)
	}

	// Supply cyclic: replenishes every semaphore and sets every flag's wait
	// bits, so timeout-bounded waits regularly succeed regardless of how the
	// task graph was wired.
	if gs.Sems > 0 || gs.Flags > 0 {
		c := Cyclic{Name: "supply", Interval: Duration(7 * time.Millisecond)}
		c.Ops = append(c.Ops, Op{Op: OpConsume, Dur: Duration(20 * time.Microsecond), Energy: 1e-9})
		for i := range ts.Sems {
			c.Ops = append(c.Ops, Op{Op: OpSigSem, Obj: ts.Sems[i].Name})
		}
		for i := range ts.Flags {
			c.Ops = append(c.Ops, Op{Op: OpSetFlg, Obj: ts.Flags[i].Name, Pattern: 0xFFFF})
		}
		ts.Cyclics = append(ts.Cyclics, c)
	}

	for i := 0; i < gs.Interrupts; i++ {
		irq := Interrupt{
			Name:    fmt.Sprintf("irq%d", i),
			IntNo:   1 + i,
			Arrival: genArrival(rng),
		}
		irq.Ops = append(irq.Ops, Op{
			Op: OpConsume, Energy: 2e-9,
			Dur: Duration(time.Duration(20+rng.Intn(61)) * time.Microsecond),
		})
		if gs.Sems > 0 {
			irq.Ops = append(irq.Ops, Op{Op: OpSigSem, Obj: ts.Sems[i%gs.Sems].Name})
		} else if gs.Flags > 0 {
			irq.Ops = append(irq.Ops, Op{Op: OpSetFlg, Obj: ts.Flags[i%gs.Flags].Name, Pattern: 1})
		}
		ts.Interrupts = append(ts.Interrupts, irq)
	}

	return ts
}

// genOps builds one task body: the UUniFast budget split into consume
// chunks with sync ops interleaved, every blocking op bounded by the
// task's own period.
func genOps(rng *sweep.RNG, gs GenSpec, ts *TaskSet, i int, util float64, period Duration) ([]Op, Duration) {
	// Execution budget on a 1 µs grid, clamped to [10µs, 80% of period].
	cet := time.Duration(util*float64(period.Std())) / time.Microsecond * time.Microsecond
	if cet < 10*time.Microsecond {
		cet = 10 * time.Microsecond
	}
	if max := period.Std() * 8 / 10; cet > max {
		cet = max / time.Microsecond * time.Microsecond
	}
	chunks := 1 + rng.Intn(3)
	if time.Duration(chunks)*time.Microsecond > cet {
		chunks = 1
	}
	part := cet / time.Duration(chunks) / time.Microsecond * time.Microsecond
	var durs []time.Duration
	rest := cet
	for c := 0; c < chunks-1; c++ {
		durs = append(durs, part)
		rest -= part
	}
	durs = append(durs, rest)

	bound := Duration(period.Std())
	var ops []Op

	// Optional leading wait: semaphore or flag, rotating by index.
	if gs.Sems > 0 && i%3 == 0 {
		ops = append(ops, Op{Op: OpWaiSem, Obj: ts.Sems[i%gs.Sems].Name, Timeout: bound})
	} else if gs.Flags > 0 && i%3 == 1 {
		ops = append(ops, Op{
			Op: OpWaiFlg, Obj: ts.Flags[i%gs.Flags].Name,
			Pattern: 1 << uint(i%16), Mode: ModeOr, Clear: true, Timeout: bound,
		})
	}

	// Consume chunks; one chunk runs inside a declaration-ordered lock
	// region for the 2-of-3 tasks that are lockers.
	locker := gs.Mutexes > 0 && i%3 != 2
	mi := 0
	if gs.Mutexes > 0 {
		mi = i % gs.Mutexes
	}
	for c, d := range durs {
		if locker && c == len(durs)-1 {
			ops = append(ops, Op{Op: OpLock, Obj: ts.Mutexes[mi].Name, Timeout: bound})
			ops = append(ops, Op{Op: OpConsume, Dur: Duration(d), Energy: float64(d) * 1e-12})
			ops = append(ops, Op{Op: OpUnlock, Obj: ts.Mutexes[mi].Name})
		} else {
			ops = append(ops, Op{Op: OpConsume, Dur: Duration(d), Energy: float64(d) * 1e-12})
		}
	}

	// Message traffic: alternate producer/consumer roles per index.
	if gs.Mbfs > 0 {
		b := ts.Mbfs[i%gs.Mbfs].Name
		if i%2 == 0 {
			ops = append(ops, Op{Op: OpSndMbf, Obj: b, Size: 1 + rng.Intn(32), Timeout: bound})
		} else {
			ops = append(ops, Op{Op: OpRcvMbf, Obj: b, Timeout: bound})
		}
	}

	// Trailing signal keeps the semaphore ring live task-to-task too.
	if gs.Sems > 0 {
		ops = append(ops, Op{Op: OpSigSem, Obj: ts.Sems[(i+1)%gs.Sems].Name})
	}
	return ops, Duration(cet)
}

// genArrival draws one stochastic arrival process: kind uniform over the
// three, mean log-uniform in 5–50 ms, gamma shape in [0.5, 4).
func genArrival(rng *sweep.RNG) Arrival {
	a := Arrival{Period: logUniformMs(rng,
		Duration(5*time.Millisecond), Duration(50*time.Millisecond))}
	switch rng.Intn(3) {
	case 0:
		a.Kind = ArrivalPeriodic
	case 1:
		a.Kind = ArrivalPoisson
	default:
		a.Kind = ArrivalGamma
		a.Shape = 0.5 + 3.5*rng.Float64()
	}
	return a
}

// uunifast draws n per-task utilizations summing exactly to u
// (Bini & Buttazzo's UUniFast).
func uunifast(rng *sweep.RNG, n int, u float64) []float64 {
	utils := make([]float64, n)
	sum := u
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-1-i))
		utils[i] = sum - next
		sum = next
	}
	utils[n-1] = sum
	return utils
}

// logUniformMs draws log-uniformly from [lo, hi], rounded to 1 ms.
func logUniformMs(rng *sweep.RNG, lo, hi Duration) Duration {
	l, h := math.Log(float64(lo)), math.Log(float64(hi))
	d := time.Duration(math.Exp(l + (h-l)*rng.Float64()))
	ms := d.Round(time.Millisecond)
	if ms < lo.Std() {
		ms = lo.Std().Round(time.Millisecond)
	}
	if ms > hi.Std() {
		ms = hi.Std().Round(time.Millisecond)
	}
	return Duration(ms)
}

// rmPriorities assigns rate-monotonic priorities starting at 5: the
// shortest period gets 5, ties broken by declaration index.
func rmPriorities(periods []Duration) []int {
	n := len(periods)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for a := 0; a < n; a++ { // stable selection sort: n is tiny
		best := a
		for b := a + 1; b < n; b++ {
			if periods[order[b]] < periods[order[best]] {
				best = b
			}
		}
		order[a], order[best] = order[best], order[a]
	}
	prio := make([]int, n)
	for rank, idx := range order {
		prio[idx] = 5 + rank
	}
	return prio
}

// ParseGenFlag parses the -gen CLI syntax: comma-separated key=value pairs
// ("tasks=8,util=0.65,irqs=2,sems=2,mutexes=1,mbfs=1,flags=1,pmin=5ms,
// pmax=100ms"). An empty string means all defaults.
func ParseGenFlag(s string) (*GenSpec, error) {
	gs := &GenSpec{}
	if strings.TrimSpace(s) == "" {
		return gs, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("workload: gen flag: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "tasks":
			gs.Tasks, err = strconv.Atoi(v)
		case "util":
			gs.Util, err = strconv.ParseFloat(v, 64)
		case "sems":
			gs.Sems, err = parseCount(v)
		case "mutexes":
			gs.Mutexes, err = parseCount(v)
		case "mbfs":
			gs.Mbfs, err = parseCount(v)
		case "flags":
			gs.Flags, err = parseCount(v)
		case "irqs":
			gs.Interrupts, err = parseCount(v)
		case "pmin":
			gs.PeriodMin, err = parseDur(v)
		case "pmax":
			gs.PeriodMax, err = parseDur(v)
		default:
			return nil, fmt.Errorf("workload: gen flag: unknown key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("workload: gen flag: %s: %w", k, err)
		}
	}
	if err := gs.Validate(); err != nil {
		return nil, err
	}
	return gs, nil
}

// parseCount parses an object count, mapping an explicit 0 to the
// "disabled" encoding (-1) so it survives normalization.
func parseCount(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		n = -1
	}
	return n, nil
}

func parseDur(v string) (Duration, error) {
	d, err := time.ParseDuration(v)
	return Duration(d), err
}
