package run

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/run/opts"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// checkpointOf builds the two-leg variant of spec pausing at ms.
func checkpointOf(spec Spec, ms int64) Spec {
	spec.Checkpoint = &CheckpointSpec{At: simMs(ms)}
	return spec
}

// mustExecute runs spec and fails the test on error.
func mustExecute(t *testing.T, label string, spec Spec) Result {
	t.Helper()
	res, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatalf("%s: execute: %v", label, err)
	}
	return res
}

// compareArtifacts asserts both results carry identical bytes for every
// artifact in names.
func compareArtifacts(t *testing.T, label string, a, b Result, names []string) {
	t.Helper()
	for _, name := range names {
		ab, bb := a.Artifacts[name], b.Artifacts[name]
		if len(ab) == 0 {
			t.Errorf("%s: artifact %s empty in reference run", label, name)
			continue
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("%s: artifact %s differs between runs (%d vs %d bytes)", label, name, len(ab), len(bb))
		}
	}
}

// TestSyntheticCheckpointByteEquality: pausing a synthetic run at a
// quiescent point and continuing is unobservable — a checkpoint run's
// artifacts byte-match the straight run's, per generated task set on both
// engines (the pause-only form needs no capture, so the goroutine engine
// supports it too).
func TestSyntheticCheckpointByteEquality(t *testing.T) {
	arts := []string{ArtifactTrace, ArtifactMetrics, ArtifactGantt, ArtifactTaskSet}
	for seed := uint64(0); seed < 10; seed++ {
		engine := opts.EngineContinuation
		if seed%2 == 1 {
			engine = opts.EngineGoroutine
		}
		spec := Spec{
			Scenario:  ScenarioSynthetic,
			Seed:      seed,
			Dur:       simMs(200),
			Engine:    engine,
			Synthetic: &SyntheticSpec{Gen: &workload.GenSpec{}},
			Artifacts: arts,
		}
		label := fmt.Sprintf("seed%d/%s", seed, engine)
		straight := mustExecute(t, label+"/straight", spec)
		paused := mustExecute(t, label+"/paused", checkpointOf(spec, 100))
		compareArtifacts(t, label, straight, paused, arts)
	}
}

// TestVideogameCheckpointByteEquality: the pause-only checkpoint holds for
// the paper's case study across six configurations.
func TestVideogameCheckpointByteEquality(t *testing.T) {
	arts := []string{ArtifactTrace, ArtifactMetrics, ArtifactGantt,
		ArtifactVCD, ArtifactDS, ArtifactConsole}
	off := false
	configs := []struct {
		label string
		spec  Spec
	}{
		{"default", Spec{Dur: simMs(300)}},
		{"seeded", Spec{Dur: simMs(300), Seed: 7}},
		{"gui-off", Spec{Dur: simMs(300), GUI: &off}},
		{"idle-sleep", Spec{Dur: simMs(300), IdleSleep: simMs(5)}},
		{"tickless-off", Spec{Dur: simMs(300), Tickless: &off}},
		{"continuation", Spec{Dur: simMs(300), Engine: opts.EngineContinuation}},
	}
	for _, tc := range configs {
		tc.spec.Artifacts = arts
		straight := mustExecute(t, tc.label+"/straight", tc.spec)
		paused := mustExecute(t, tc.label+"/paused", checkpointOf(tc.spec, 137))
		compareArtifacts(t, tc.label, straight, paused, arts)
	}
}

// TestSnapshotResumeByteEquality is the tentpole contract end to end:
// snapshot at T, resume the bytes to 2T, and the resumed artifacts
// byte-match the straight run to 2T. The capturing run itself must also
// match (capture is unobservable), and the snapshot bytes must be
// deterministic.
func TestSnapshotResumeByteEquality(t *testing.T) {
	arts := []string{ArtifactTrace, ArtifactMetrics, ArtifactGantt, ArtifactTaskSet}
	for seed := uint64(0); seed < 4; seed++ {
		label := fmt.Sprintf("seed%d", seed)
		spec := Spec{
			Scenario:  ScenarioSynthetic,
			Seed:      seed,
			Dur:       simMs(200),
			Engine:    opts.EngineContinuation,
			Synthetic: &SyntheticSpec{Gen: &workload.GenSpec{}},
			Artifacts: arts,
		}
		straight := mustExecute(t, label+"/straight", spec)

		capSpec := spec
		capSpec.Checkpoint = &CheckpointSpec{At: simMs(100)}
		capSpec.Artifacts = append([]string{ArtifactSnapshot}, arts...)
		captured := mustExecute(t, label+"/capture", capSpec)
		compareArtifacts(t, label+"/capture-unobservable", straight, captured, arts)

		snap := captured.Artifacts[ArtifactSnapshot]
		if len(snap) == 0 {
			t.Fatalf("%s: empty snapshot artifact", label)
		}
		captured2 := mustExecute(t, label+"/capture2", capSpec)
		if !bytes.Equal(snap, captured2.Artifacts[ArtifactSnapshot]) {
			t.Errorf("%s: snapshot bytes differ between identical captures", label)
		}

		resumeSpec := Spec{
			Scenario:   ScenarioSynthetic,
			Dur:        simMs(200),
			Checkpoint: &CheckpointSpec{ResumeFrom: snap},
			Artifacts:  arts,
		}
		resumed := mustExecute(t, label+"/resume", resumeSpec)
		compareArtifacts(t, label+"/resume", straight, resumed, arts)
		if got, want := resumed.Stats.Activations, straight.Stats.Activations; got != want {
			t.Errorf("%s: resumed activations %d, straight %d", label, got, want)
		}
	}
}

// TestSnapshotGoroutineEngineRefused: capture on the goroutine engine
// fails with the typed refusal error, not a panic or silent corruption.
func TestSnapshotGoroutineEngineRefused(t *testing.T) {
	spec := Spec{
		Scenario:   ScenarioSynthetic,
		Dur:        simMs(100),
		Engine:     opts.EngineGoroutine,
		Synthetic:  &SyntheticSpec{Gen: &workload.GenSpec{}},
		Checkpoint: &CheckpointSpec{At: simMs(50)},
		Artifacts:  []string{ArtifactSnapshot},
	}
	_, err := Execute(context.Background(), spec)
	if !errors.Is(err, snapshot.ErrUnsnapshottable) {
		t.Fatalf("goroutine capture: got %v, want ErrUnsnapshottable", err)
	}
}

// TestSnapshotResumeCorruptRejected: flipped snapshot bytes are refused
// with the typed corruption error.
func TestSnapshotResumeCorruptRejected(t *testing.T) {
	spec := Spec{
		Scenario:   ScenarioSynthetic,
		Dur:        simMs(100),
		Engine:     opts.EngineContinuation,
		Synthetic:  &SyntheticSpec{Gen: &workload.GenSpec{}},
		Checkpoint: &CheckpointSpec{At: simMs(50)},
		Artifacts:  []string{ArtifactSnapshot},
	}
	res := mustExecute(t, "capture", spec)
	snap := append([]byte(nil), res.Artifacts[ArtifactSnapshot]...)
	snap[len(snap)/2] ^= 0x40
	_, err := Execute(context.Background(), Spec{
		Scenario:   ScenarioSynthetic,
		Dur:        simMs(100),
		Checkpoint: &CheckpointSpec{ResumeFrom: snap},
	})
	if !errors.Is(err, snapshot.ErrCorrupt) && !errors.Is(err, snapshot.ErrIncompatible) {
		t.Fatalf("corrupt resume: got %v, want ErrCorrupt/ErrIncompatible", err)
	}
}

// TestWarmSweepMatchesCold: warm-start sweep forking is byte-identical to
// cold per-seed runs, per seed and artifact, including the ForkSeed reseed
// divergence (different seeds must actually diverge).
func TestWarmSweepMatchesCold(t *testing.T) {
	arts := []string{ArtifactTrace, ArtifactMetrics, ArtifactGantt, ArtifactTaskSet}
	sw := SweepSpec{
		Base: Spec{
			Scenario:  ScenarioSynthetic,
			Seed:      11,
			Dur:       simMs(150),
			Engine:    opts.EngineContinuation,
			Synthetic: &SyntheticSpec{Gen: &workload.GenSpec{Interrupts: 2}},
			Artifacts: arts,
		},
		Prefix:  simMs(60),
		Seeds:   []uint64{101, 102, 103, 104, 105, 106},
		Workers: 2,
	}
	cold, err := ExecuteSweep(context.Background(), sw)
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	sw.Warm = true
	warm, err := ExecuteSweep(context.Background(), sw)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	if len(cold) != len(sw.Seeds) || len(warm) != len(sw.Seeds) {
		t.Fatalf("result counts: cold %d warm %d, want %d", len(cold), len(warm), len(sw.Seeds))
	}
	for i := range sw.Seeds {
		label := fmt.Sprintf("seed%d", sw.Seeds[i])
		compareArtifacts(t, label, cold[i], warm[i], arts)
		if cold[i].Stats.Activations != warm[i].Stats.Activations ||
			cold[i].Stats.CtxSwitches != warm[i].Stats.CtxSwitches ||
			cold[i].Stats.Ticks != warm[i].Stats.Ticks {
			t.Errorf("%s: deterministic stats differ: cold %+v warm %+v",
				label, cold[i].Stats, warm[i].Stats)
		}
	}
	// Variants must actually fork: different seeds, different traces.
	if bytes.Equal(warm[0].Artifacts[ArtifactTrace], warm[1].Artifacts[ArtifactTrace]) {
		t.Errorf("fork seeds 101 and 102 produced identical traces — reseed did not take")
	}
}

// TestWarmSweepGoroutineFallsBackCold: a goroutine-engine base is outside
// the snapshot envelope; warm mode must transparently produce the cold
// results instead of failing.
func TestWarmSweepGoroutineFallsBackCold(t *testing.T) {
	arts := []string{ArtifactMetrics, ArtifactTaskSet}
	sw := SweepSpec{
		Base: Spec{
			Scenario:  ScenarioSynthetic,
			Seed:      5,
			Dur:       simMs(100),
			Engine:    opts.EngineGoroutine,
			Synthetic: &SyntheticSpec{Gen: &workload.GenSpec{}},
			Artifacts: arts,
		},
		Prefix:  simMs(40),
		Seeds:   []uint64{1, 2},
		Workers: 1,
	}
	cold, err := ExecuteSweep(context.Background(), sw)
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	sw.Warm = true
	warm, err := ExecuteSweep(context.Background(), sw)
	if err != nil {
		t.Fatalf("warm sweep (fallback): %v", err)
	}
	for i := range sw.Seeds {
		compareArtifacts(t, fmt.Sprintf("seed%d", sw.Seeds[i]), cold[i], warm[i], arts)
	}
}
