package run

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/sysc"
)

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"250ms"`), &d); err != nil {
		t.Fatal(err)
	}
	if d.Std() != 250*time.Millisecond {
		t.Fatalf("string form: got %v", d.Std())
	}
	if err := json.Unmarshal([]byte(`1000000`), &d); err != nil {
		t.Fatal(err)
	}
	if d.Std() != time.Millisecond {
		t.Fatalf("integer form: got %v", d.Std())
	}
	b, err := json.Marshal(Duration(1500 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1.5s"` {
		t.Fatalf("marshal: got %s", b)
	}
	if Duration(time.Millisecond).Sim() != 1*sysc.Ms {
		t.Fatal("Sim conversion off")
	}
}

func TestValidateArtifacts(t *testing.T) {
	if _, err := Execute(context.Background(), Spec{Artifacts: []string{"nope"}}); err == nil {
		t.Fatal("unknown artifact accepted")
	}
	if _, err := Execute(context.Background(), Spec{Scenario: "warp"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	// gantt.txt belongs to videogame, not chaos.
	if _, err := Execute(context.Background(), Spec{
		Scenario: ScenarioChaos, Artifacts: []string{ArtifactGantt},
	}); err == nil {
		t.Fatal("cross-scenario artifact accepted")
	}
	// trace.json on chaos requires a job replay.
	if _, err := Execute(context.Background(), Spec{
		Scenario: ScenarioChaos, Artifacts: []string{ArtifactTrace},
	}); err == nil {
		t.Fatal("campaign trace accepted without chaos.job")
	}
}

// TestVideogameDeterminism is the façade's core contract: the same Spec
// executed twice yields byte-identical artifacts (Stats wall-clock fields
// excluded).
func TestVideogameDeterminism(t *testing.T) {
	spec := Spec{
		Dur:  Duration(120 * time.Millisecond),
		Seed: 42,
		Artifacts: []string{
			ArtifactTrace, ArtifactMetrics, ArtifactGantt,
			ArtifactVCD, ArtifactDS, ArtifactConsole,
		},
	}
	r1, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range spec.Artifacts {
		a1, a2 := r1.Artifacts[name], r2.Artifacts[name]
		if len(a1) == 0 {
			t.Errorf("%s: empty artifact", name)
			continue
		}
		if !bytes.Equal(a1, a2) {
			t.Errorf("%s: not byte-identical across runs (%d vs %d bytes)", name, len(a1), len(a2))
		}
	}
	if r1.Stats.Frames == 0 || r1.Stats.Ticks == 0 {
		t.Fatalf("empty stats digest: %+v", r1.Stats)
	}
	if r1.Stats.Frames != r2.Stats.Frames || r1.Stats.Score != r2.Stats.Score ||
		r1.Stats.CtxSwitches != r2.Stats.CtxSwitches {
		t.Fatalf("stats digest differs: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

// TestVideogameCancel checks the partial-result contract: a cancelled
// context stops the run at a quiescent point with the context's cause.
func TestVideogameCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Execute(ctx, Spec{Dur: Duration(time.Second)})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Stats.SimTime.Std() >= time.Second {
		t.Fatalf("run was not cut short: simulated %v", res.Stats.SimTime.Std())
	}
}

// TestDeadline checks that Spec.Deadline bounds wall-clock time and yields
// a deadline-exceeded partial result.
func TestDeadline(t *testing.T) {
	res, err := Execute(context.Background(), Spec{
		Dur:      Duration(time.Hour), // far more sim time than the deadline allows
		Deadline: Duration(30 * time.Millisecond),
	})
	if err != context.DeadlineExceeded {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if res.Stats.SimTime.Std() >= time.Hour {
		t.Fatal("run was not cut short by the deadline")
	}
}

// TestChaosReplayMatchesCampaign checks the façade reproduces the chaos
// package's own replay contract: the single-job scenario yields the same
// verdict digest as calling chaos.RunJob directly.
func TestChaosReplayMatchesCampaign(t *testing.T) {
	job := 3
	spec := Spec{
		Scenario:  ScenarioChaos,
		Seed:      7,
		Dur:       Duration(60 * time.Millisecond),
		Chaos:     &ChaosSpec{Job: &job},
		Artifacts: []string{ArtifactSummary},
	}
	res, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	direct := chaos.RunJob(chaos.Config{BaseSeed: 7, Dur: 60 * sysc.Ms}, job)
	if res.Stats.Jobs != 1 {
		t.Fatalf("jobs = %d", res.Stats.Jobs)
	}
	wantFail := 0
	if !direct.Pass {
		wantFail = 1
	}
	if res.Stats.Failures != wantFail {
		t.Fatalf("failures = %d, direct pass = %v", res.Stats.Failures, direct.Pass)
	}
	if res.Stats.Ticks != direct.Ticks || res.Stats.CtxSwitches != direct.CtxSwitches {
		t.Fatalf("digest mismatch: stats %+v vs verdict %+v", res.Stats, direct)
	}
	if len(res.Artifacts[ArtifactSummary]) == 0 {
		t.Fatal("empty summary")
	}
}

// TestChaosCampaign smoke-tests the campaign path and its summary/repro
// artifacts.
func TestChaosCampaign(t *testing.T) {
	spec := Spec{
		Scenario:  ScenarioChaos,
		Seed:      11,
		Dur:       Duration(40 * time.Millisecond),
		Chaos:     &ChaosSpec{Seeds: 4, Workers: 2},
		Artifacts: []string{ArtifactSummary, ArtifactRepro},
	}
	res, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Jobs != 4 {
		t.Fatalf("jobs = %d", res.Stats.Jobs)
	}
	if res.Stats.Failures != 0 {
		t.Fatalf("correct kernel failed %d jobs:\n%s", res.Stats.Failures, res.Artifacts[ArtifactSummary])
	}
	sum := res.Artifacts[ArtifactSummary]
	if !bytes.Contains(sum, []byte("failures: 0/4")) {
		t.Fatalf("summary missing verdict line:\n%s", sum)
	}
	// No failures: the repro artifact exists and is empty.
	if repro, ok := res.Artifacts[ArtifactRepro]; !ok || len(repro) != 0 {
		t.Fatalf("repro artifact: ok=%v len=%d", ok, len(repro))
	}
}

// TestExperimentsSections smoke-tests a cheap experiments subset.
func TestExperimentsSections(t *testing.T) {
	spec := Spec{
		Scenario:    ScenarioExperiments,
		Experiments: &ExperimentsSpec{Sections: []string{"table1", "a3"}},
		Artifacts:   []string{ArtifactReport},
	}
	res, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Artifacts[ArtifactReport]
	if !bytes.Contains(rep, []byte("Table 1")) {
		t.Fatalf("report missing Table 1:\n%s", rep)
	}
	if !bytes.Contains(rep, []byte(sectionDivider)) {
		t.Fatal("report missing section divider")
	}

	if _, err := Execute(context.Background(), Spec{
		Scenario:    ScenarioExperiments,
		Experiments: &ExperimentsSpec{Sections: []string{"fig99"}},
	}); err == nil {
		t.Fatal("unknown section accepted")
	}
}
