package run

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestHashDefaultsMaterialized: a Spec written with every default spelled
// out hashes identically to the bare Spec that relies on them.
func TestHashDefaultsMaterialized(t *testing.T) {
	bare := Spec{}
	tru := true
	full := Spec{
		Scenario: ScenarioVideogame,
		Dur:      Duration(time.Second),
		Engine:   "goroutine",
		GUI:      &tru,
		Frame:    Duration(10 * time.Millisecond),
		Tick:     Duration(time.Millisecond),
		Tickless: &tru,
	}
	hb, err := Hash(bare)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := Hash(full)
	if err != nil {
		t.Fatal(err)
	}
	if hb != hf {
		t.Fatalf("defaults not materialized: %s vs %s", hb, hf)
	}
	if len(hb) != 64 {
		t.Fatalf("hash length %d: %s", len(hb), hb)
	}
}

// TestHashErasesThroughputKnobs: deadline and worker counts never change a
// completed run's artifacts, so they must not change the hash.
func TestHashErasesThroughputKnobs(t *testing.T) {
	base := Spec{Scenario: ScenarioChaos, Seed: 9, Chaos: &ChaosSpec{Seeds: 4}}
	withKnobs := base
	withKnobs.Deadline = Duration(30 * time.Second)
	withKnobs.Chaos = &ChaosSpec{Seeds: 4, Workers: 8}
	h1 := mustHash(t, base)
	h2 := mustHash(t, withKnobs)
	if h1 != h2 {
		t.Fatalf("deadline/workers leaked into hash: %s vs %s", h1, h2)
	}

	exp := Spec{Scenario: ScenarioExperiments, Experiments: &ExperimentsSpec{Sections: []string{"table1"}}}
	expW := Spec{Scenario: ScenarioExperiments, Experiments: &ExperimentsSpec{Sections: []string{"table1"}, Workers: 4}}
	if mustHash(t, exp) != mustHash(t, expW) {
		t.Fatal("experiments workers leaked into hash")
	}
}

// TestHashArtifactOrderInsensitive: the artifact list is a set.
func TestHashArtifactOrderInsensitive(t *testing.T) {
	a := Spec{Artifacts: []string{ArtifactMetrics, ArtifactTrace, ArtifactMetrics}}
	b := Spec{Artifacts: []string{ArtifactTrace, ArtifactMetrics}}
	if mustHash(t, a) != mustHash(t, b) {
		t.Fatal("artifact order/duplicates leaked into hash")
	}
	// But the artifact *set* is part of the identity: a different set is a
	// different result document.
	c := Spec{Artifacts: []string{ArtifactTrace}}
	if mustHash(t, a) == mustHash(t, c) {
		t.Fatal("different artifact sets collided")
	}
}

// TestHashDistinguishesResults: knobs that do change artifacts must change
// the hash.
func TestHashDistinguishesResults(t *testing.T) {
	hashes := map[string]string{}
	for name, s := range map[string]Spec{
		"base":     {},
		"seed":     {Seed: 1},
		"dur":      {Dur: Duration(2 * time.Second)},
		"step":     {Step: true},
		"scenario": {Scenario: ScenarioChaos},
		"sections": {Scenario: ScenarioExperiments, Experiments: &ExperimentsSpec{Sections: []string{"table1"}}},
	} {
		h := mustHash(t, s)
		for prev, ph := range hashes {
			if ph == h {
				t.Fatalf("%s and %s collided: %s", name, prev, h)
			}
		}
		hashes[name] = h
	}
}

// TestHashEngineIsIdentity documents a deliberate choice: the engine knob
// is part of the hash even though both engines produce byte-identical
// artifacts — the engine-diff suite, not the cache, is where that
// equivalence is asserted.
func TestHashEngineIsIdentity(t *testing.T) {
	if mustHash(t, Spec{Engine: "goroutine"}) == mustHash(t, Spec{Engine: "continuation"}) {
		t.Fatal("engines collided")
	}
	if mustHash(t, Spec{}) != mustHash(t, Spec{Engine: "goroutine"}) {
		t.Fatal("default engine not materialized as goroutine")
	}
}

// TestCanonicalizeIdempotent: canonicalizing a canonical Spec is a no-op.
func TestCanonicalizeIdempotent(t *testing.T) {
	specs := []Spec{
		{},
		{Scenario: ScenarioChaos, Chaos: &ChaosSpec{Corrupt: true}},
		{Scenario: ScenarioExperiments},
		{Scenario: ScenarioSynthetic, Synthetic: &SyntheticSpec{Gen: &workload.GenSpec{Interrupts: 1}}},
	}
	for _, s := range specs {
		c1, err := Canonicalize(s)
		if err != nil {
			t.Fatal(err)
		}
		j1, err := CanonicalJSON(s)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := CanonicalJSON(c1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("not idempotent:\n%s\n%s", j1, j2)
		}
	}
}

// TestCanonicalizeRejectsInvalid: canonicalization validates first.
func TestCanonicalizeRejectsInvalid(t *testing.T) {
	if _, err := Canonicalize(Spec{Scenario: "warp"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Hash(Spec{Artifacts: []string{"nope.bin"}}); err == nil {
		t.Fatal("unknown artifact accepted")
	}
}

// TestCacheable: experiments reports embed wall-clock measurements and are
// the one non-cacheable scenario.
func TestCacheable(t *testing.T) {
	if Cacheable(Spec{Scenario: ScenarioExperiments}) {
		t.Fatal("experiments must not be cacheable")
	}
	for _, sc := range []Scenario{"", ScenarioVideogame, ScenarioChaos, ScenarioSynthetic} {
		if !Cacheable(Spec{Scenario: sc}) {
			t.Fatalf("scenario %q should be cacheable", sc)
		}
	}
}

func mustHash(t *testing.T, s Spec) string {
	t.Helper()
	h, err := Hash(s)
	if err != nil {
		t.Fatal(err)
	}
	return h
}
