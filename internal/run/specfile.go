package run

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// LoadSpecFile reads and validates a full Spec from a JSON file — the
// -spec flag behind cmd/rtkspec and cmd/chaos. Unknown fields are rejected
// so a typoed knob fails loudly instead of silently running defaults.
func LoadSpecFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("run: spec file: %w", err)
	}
	return ParseSpec(data)
}

// ParseSpec decodes and validates a Spec from JSON bytes.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("run: spec: %w", err)
	}
	if err := Validate(spec); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
