package run

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/run/opts"
	"repro/internal/workload"
)

// streamSpecs are the scenarios the streaming byte contract is checked on:
// one videogame and one synthetic run, each exercising trace + metrics (the
// streamable pair) plus a buffered bystander artifact.
func streamSpecs() []struct {
	label string
	spec  Spec
} {
	return []struct {
		label string
		spec  Spec
	}{
		{"videogame", Spec{
			Dur:       simMs(200),
			Seed:      7,
			Artifacts: []string{ArtifactTrace, ArtifactMetrics, ArtifactConsole},
		}},
		{"synthetic", Spec{
			Scenario:  ScenarioSynthetic,
			Dur:       simMs(200),
			Seed:      11,
			Synthetic: &SyntheticSpec{Gen: &workload.GenSpec{Tasks: 4}},
			Artifacts: []string{ArtifactTrace, ArtifactMetrics, ArtifactTaskSet},
		}},
	}
}

// TestStreamByteIdentical is the tentpole contract: for the same Spec, a
// streamed artifact is byte-identical to its buffered twin — on both
// T-THREAD engines, and with a progress observer attached (the observer
// pauses the run at quiescent points; the pause must be unobservable).
func TestStreamByteIdentical(t *testing.T) {
	for _, tc := range streamSpecs() {
		for _, engine := range []string{opts.EngineGoroutine, opts.EngineContinuation} {
			t.Run(tc.label+"/"+engine, func(t *testing.T) {
				spec := tc.spec
				spec.Engine = engine

				buffered, err := Execute(context.Background(), spec)
				if err != nil {
					t.Fatalf("buffered: %v", err)
				}

				var traceOut, metricsOut bytes.Buffer
				var snapshots []Stats
				streamed, err := ExecuteStream(context.Background(), spec, StreamOptions{
					Sinks: Sinks{
						ArtifactTrace:   &traceOut,
						ArtifactMetrics: &metricsOut,
					},
					Progress: func(st Stats) { snapshots = append(snapshots, st) },
				})
				if err != nil {
					t.Fatalf("streamed: %v", err)
				}

				if !bytes.Equal(traceOut.Bytes(), buffered.Artifacts[ArtifactTrace]) {
					t.Errorf("trace: streamed %d bytes != buffered %d bytes",
						traceOut.Len(), len(buffered.Artifacts[ArtifactTrace]))
				}
				if !bytes.Equal(metricsOut.Bytes(), buffered.Artifacts[ArtifactMetrics]) {
					t.Errorf("metrics: streamed %d bytes != buffered %d bytes",
						metricsOut.Len(), len(buffered.Artifacts[ArtifactMetrics]))
				}

				// Sink-fed artifacts leave the result map; bystanders stay.
				if _, ok := streamed.Artifacts[ArtifactTrace]; ok {
					t.Error("streamed result still buffers trace")
				}
				if _, ok := streamed.Artifacts[ArtifactMetrics]; ok {
					t.Error("streamed result still buffers metrics")
				}
				for name, want := range buffered.Artifacts {
					if name == ArtifactTrace || name == ArtifactMetrics {
						continue
					}
					if !bytes.Equal(streamed.Artifacts[name], want) {
						t.Errorf("bystander artifact %s differs under streaming", name)
					}
				}

				// The progress observer fired mid-run with monotone sim time.
				if len(snapshots) == 0 {
					t.Fatal("no progress snapshots observed")
				}
				for i := 1; i < len(snapshots); i++ {
					if snapshots[i].SimTime < snapshots[i-1].SimTime {
						t.Fatalf("progress sim time not monotone: %v after %v",
							snapshots[i].SimTime, snapshots[i-1].SimTime)
					}
				}
				if last := snapshots[len(snapshots)-1]; last.SimTime >= streamed.Stats.SimTime {
					t.Fatalf("last progress snapshot (%v) not strictly mid-run (final %v)",
						last.SimTime, streamed.Stats.SimTime)
				}
				if streamed.Stats.Scenario != buffered.Stats.Scenario ||
					streamed.Stats.Ticks != buffered.Stats.Ticks ||
					streamed.Stats.CtxSwitches != buffered.Stats.CtxSwitches {
					t.Errorf("final stats diverge: streamed %+v buffered %+v",
						streamed.Stats, buffered.Stats)
				}
			})
		}
	}
}

// TestStreamFlagHashInvariant pins the cache-sharing property: Spec.Stream
// is transport, not content — Canonicalize erases it, so a streamed and a
// buffered submission share one canonical hash (and thus one cache entry).
func TestStreamFlagHashInvariant(t *testing.T) {
	spec := Spec{Dur: simMs(100), Artifacts: []string{ArtifactTrace}}
	plain, err := Hash(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Stream = true
	streamed, err := Hash(spec)
	if err != nil {
		t.Fatal(err)
	}
	if plain != streamed {
		t.Fatalf("Stream flag changed canonical hash: %s vs %s", plain, streamed)
	}
}

// TestStreamValidation covers the option-surface rejections.
func TestStreamValidation(t *testing.T) {
	var sink bytes.Buffer

	// Sink for an artifact the spec does not request.
	_, err := ExecuteStream(context.Background(), Spec{
		Dur: simMs(50), Artifacts: []string{ArtifactConsole},
	}, StreamOptions{Sinks: Sinks{ArtifactTrace: &sink}})
	if err == nil {
		t.Error("sink for unrequested artifact accepted")
	}

	// Sink for an artifact the scenario cannot stream.
	_, err = ExecuteStream(context.Background(), Spec{
		Dur: simMs(50), Artifacts: []string{ArtifactConsole, ArtifactTrace},
	}, StreamOptions{Sinks: Sinks{ArtifactConsole: &sink}})
	if err == nil {
		t.Error("sink for unstreamable artifact accepted")
	}

	// Sinks and checkpoints are exclusive.
	_, err = ExecuteStream(context.Background(), Spec{
		Scenario:   ScenarioSynthetic,
		Dur:        simMs(100),
		Synthetic:  &SyntheticSpec{Gen: &workload.GenSpec{Tasks: 2}},
		Artifacts:  []string{ArtifactTrace},
		Checkpoint: &CheckpointSpec{At: simMs(50)},
	}, StreamOptions{Sinks: Sinks{ArtifactTrace: &sink}})
	if err == nil {
		t.Error("sinks with checkpoint accepted")
	}

	// Spec.Stream and Checkpoint are exclusive at Validate level.
	if err := Validate(Spec{
		Dur:        simMs(100),
		Stream:     true,
		Checkpoint: &CheckpointSpec{At: simMs(50)},
	}); err == nil {
		t.Error("Validate accepted stream+checkpoint")
	}
}

// TestStreamableArtifacts pins the streamable set per scenario.
func TestStreamableArtifacts(t *testing.T) {
	got := StreamableArtifacts(Spec{
		Artifacts: []string{ArtifactConsole, ArtifactTrace, ArtifactMetrics},
	})
	if len(got) != 2 || got[0] != ArtifactTrace || got[1] != ArtifactMetrics {
		t.Fatalf("videogame streamable = %v", got)
	}
	if Streamable(ScenarioChaos, ArtifactTrace) {
		t.Error("chaos should not stream")
	}
	if !Streamable("", ArtifactTrace) {
		t.Error("empty scenario should default to videogame")
	}
}
