package run

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/workload"
)

// TestEngineDiffSynthetic runs 10 generated task sets on both T-THREAD
// engines and asserts the Perfetto trace, metrics report and resolved
// task-set artifacts are byte-identical — the acceptance criterion of the
// synthetic scenario.
func TestEngineDiffSynthetic(t *testing.T) {
	arts := []string{ArtifactTrace, ArtifactMetrics, ArtifactTaskSet}
	for seed := uint64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			diffArtifacts(t, fmt.Sprintf("seed %d", seed), Spec{
				Scenario:  ScenarioSynthetic,
				Seed:      seed,
				Dur:       simMs(200),
				Synthetic: &SyntheticSpec{Gen: &workload.GenSpec{}},
				Artifacts: arts,
			})
		})
	}
}

// TestSyntheticInlineTaskSet runs a hand-written TaskSet end to end and
// checks the run produced actual scheduling activity plus the resolved
// task-set artifact.
func TestSyntheticInlineTaskSet(t *testing.T) {
	ts := &workload.TaskSet{
		Name: "inline",
		Sems: []workload.Sem{{Name: "s", Init: 1}},
		Tasks: []workload.Task{
			{Name: "hi", Priority: 5, Period: simMs(10), CET: simMs(1), Ops: []workload.Op{
				{Op: workload.OpConsume, Dur: simMs(1), Energy: 1e-9},
				{Op: workload.OpSigSem, Obj: "s"},
			}},
			{Name: "lo", Priority: 8, Period: simMs(20), Ops: []workload.Op{
				{Op: workload.OpWaiSem, Obj: "s", Timeout: simMs(20)},
				{Op: workload.OpConsume, Dur: simMs(2)},
			}},
		},
	}
	spec := Spec{
		Scenario:  ScenarioSynthetic,
		Dur:       simMs(300),
		Synthetic: &SyntheticSpec{TaskSet: ts},
		Artifacts: []string{ArtifactTaskSet, ArtifactGantt},
	}
	res, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.Stats.Activations == 0 {
		t.Fatalf("no task activations in 300ms: stats %+v", res.Stats)
	}
	if res.Stats.CtxSwitches == 0 {
		t.Fatalf("no context switches: stats %+v", res.Stats)
	}
	var round workload.TaskSet
	if err := json.Unmarshal(res.Artifacts[ArtifactTaskSet], &round); err != nil {
		t.Fatalf("taskset artifact is not valid JSON: %v", err)
	}
	if round.Name != "inline" || len(round.Tasks) != 2 {
		t.Fatalf("taskset artifact did not round-trip: %+v", round)
	}
	if len(res.Artifacts[ArtifactGantt]) == 0 {
		t.Fatalf("empty gantt artifact")
	}
}

// TestSyntheticValidate covers the spec-level validation surface the job
// server relies on for 400-level rejections.
func TestSyntheticValidate(t *testing.T) {
	gen := &workload.GenSpec{}
	cases := []struct {
		label string
		spec  Spec
		ok    bool
	}{
		{"gen", Spec{Scenario: ScenarioSynthetic, Synthetic: &SyntheticSpec{Gen: gen}}, true},
		{"missing", Spec{Scenario: ScenarioSynthetic}, false},
		{"both", Spec{Scenario: ScenarioSynthetic, Synthetic: &SyntheticSpec{
			Gen: gen, TaskSet: &workload.TaskSet{}}}, false},
		{"neither", Spec{Scenario: ScenarioSynthetic, Synthetic: &SyntheticSpec{}}, false},
		{"wrong-scenario", Spec{Synthetic: &SyntheticSpec{Gen: gen}}, false},
		{"invalid-taskset", Spec{Scenario: ScenarioSynthetic, Synthetic: &SyntheticSpec{
			TaskSet: &workload.TaskSet{}}}, false},
		{"bad-artifact", Spec{Scenario: ScenarioSynthetic, Synthetic: &SyntheticSpec{Gen: gen},
			Artifacts: []string{ArtifactConsole}}, false},
		{"chaos-gen", Spec{Scenario: ScenarioChaos, Chaos: &ChaosSpec{Synthetic: gen}}, true},
		{"chaos-gen-bad", Spec{Scenario: ScenarioChaos, Chaos: &ChaosSpec{
			Synthetic: &workload.GenSpec{Tasks: 1000}}}, false},
	}
	for _, tc := range cases {
		err := Validate(tc.spec)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.label, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.label)
		}
	}
}

// TestSyntheticSameSpecSameArtifacts asserts the determinism contract on a
// generated set: two Executes of one Spec are byte-identical.
func TestSyntheticSameSpecSameArtifacts(t *testing.T) {
	spec := Spec{
		Scenario:  ScenarioSynthetic,
		Seed:      3,
		Dur:       simMs(150),
		Synthetic: &SyntheticSpec{Gen: &workload.GenSpec{Tasks: 4}},
		Artifacts: []string{ArtifactTrace, ArtifactMetrics, ArtifactTaskSet},
	}
	a, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	for name, ab := range a.Artifacts {
		if !bytes.Equal(ab, b.Artifacts[name]) {
			t.Errorf("artifact %s differs between identical runs", name)
		}
	}
}
