package run

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/run/opts"
)

// execEngine runs spec on the named engine and returns its artifacts.
func execEngine(t *testing.T, spec Spec, engine string) map[string][]byte {
	t.Helper()
	spec.Engine = engine
	res, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatalf("engine=%s: %v", engine, err)
	}
	return res.Artifacts
}

// diffArtifacts asserts the two engines produced byte-identical artifacts.
func diffArtifacts(t *testing.T, label string, spec Spec) {
	t.Helper()
	g := execEngine(t, spec, opts.EngineGoroutine)
	c := execEngine(t, spec, opts.EngineContinuation)
	if len(g) != len(c) {
		t.Fatalf("%s: artifact sets differ: goroutine %d, continuation %d", label, len(g), len(c))
	}
	for name, gb := range g {
		cb, ok := c[name]
		if !ok {
			t.Fatalf("%s: continuation engine missing artifact %s", label, name)
		}
		if !bytes.Equal(gb, cb) {
			i := 0
			for i < len(gb) && i < len(cb) && gb[i] == cb[i] {
				i++
			}
			lo, hi := i-40, i+40
			if lo < 0 {
				lo = 0
			}
			snip := func(b []byte) string {
				h := hi
				if h > len(b) {
					h = len(b)
				}
				if lo >= h {
					return ""
				}
				return string(b[lo:h])
			}
			t.Errorf("%s: artifact %s diverges at byte %d (goroutine %d bytes, continuation %d bytes)\n goroutine:    %q\n continuation: %q",
				label, name, i, len(gb), len(cb), snip(gb), snip(cb))
		}
	}
}

// TestEngineDiffVideogame runs the videogame scenario on both T-THREAD
// engines across the paper's headline configurations and asserts the full
// artifact set — Perfetto trace, metrics report, gantt, DS listing, console
// digest — is byte-identical.
func TestEngineDiffVideogame(t *testing.T) {
	arts := []string{ArtifactConsole, ArtifactTrace, ArtifactMetrics, ArtifactGantt, ArtifactDS}
	off := false
	cases := []struct {
		label string
		spec  Spec
	}{
		{"default", Spec{Dur: simMs(300), Artifacts: arts}},
		{"seeded", Spec{Dur: simMs(300), Seed: 7, Artifacts: arts}},
		{"gui-off", Spec{Dur: simMs(300), GUI: &off, Artifacts: arts}},
		{"frame-off", Spec{Dur: simMs(300), Frame: -1, Artifacts: arts}},
		{"idle-sleep", Spec{Dur: simMs(300), IdleSleep: simMs(5), Artifacts: arts}},
		{"tickless-off", Spec{Dur: simMs(300), Tickless: &off, Artifacts: arts}},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) { diffArtifacts(t, tc.label, tc.spec) })
	}
}

// TestEngineDiffChaos is the 20-seed differential campaign: every job's
// summary and repro artifacts must match across engines, and each seed's
// single-job replay must stream a byte-identical Perfetto trace.
func TestEngineDiffChaos(t *testing.T) {
	const seeds = 20
	diffArtifacts(t, "campaign", Spec{
		Scenario:  ScenarioChaos,
		Seed:      42,
		Chaos:     &ChaosSpec{Seeds: seeds, Workers: 1},
		Artifacts: []string{ArtifactSummary, ArtifactRepro},
	})
	if testing.Short() {
		t.Skip("per-seed trace replays skipped in -short mode")
	}
	for job := 0; job < seeds; job++ {
		job := job
		t.Run(fmt.Sprintf("job%02d", job), func(t *testing.T) {
			diffArtifacts(t, fmt.Sprintf("job %d", job), Spec{
				Scenario:  ScenarioChaos,
				Seed:      42,
				Chaos:     &ChaosSpec{Job: &job},
				Artifacts: []string{ArtifactSummary, ArtifactTrace},
			})
		})
	}
}

// simMs builds a Duration of n simulated milliseconds.
func simMs(n int64) Duration { return Duration(n * 1e6) }
