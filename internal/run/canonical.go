package run

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"time"

	"repro/internal/run/opts"
)

// This file defines the canonical Spec encoding and its content hash — the
// identity a Spec carries through the serving fleet. Two Specs that would
// produce the same artifacts (defaults spelled out vs omitted, artifact
// lists reordered, throughput-only knobs like worker counts set or not)
// canonicalize to the same bytes and therefore the same hash, so the result
// cache and the shard router treat them as one job.
//
// The canonical form is scenario-aware: every knob the scenario reads is
// materialized to its effective value, and every knob it ignores is erased.
// Fields that can never change a *successful* run's artifacts are erased
// too: Deadline only decides whether a run completes (a completed run's
// artifacts are deadline-independent, and only completed runs are cached)
// and the chaos/experiments worker counts only change wall-clock cost.

// canonicalDefaults mirrored from the scenario executors. Kept as named
// constants so executor and canonicalizer can't silently drift apart in
// review: change one, grep the other.
const (
	defaultVideogameDur = Duration(1 * time.Second)
	defaultChaosDur     = Duration(150 * time.Millisecond)
	defaultSyntheticDur = Duration(1 * time.Second)
	defaultFrame        = Duration(10 * time.Millisecond)
	defaultTick         = Duration(1 * time.Millisecond)
	defaultSimTime      = Duration(1 * time.Second)
)

// Canonicalize returns the canonical form of spec: validated, every
// scenario-relevant default materialized, every ignored or
// throughput-only field erased, and the artifact list sorted and
// deduplicated. It is idempotent: Canonicalize(Canonicalize(s)) ==
// Canonicalize(s).
func Canonicalize(spec Spec) (Spec, error) {
	if spec.Scenario == "" {
		spec.Scenario = ScenarioVideogame
	}
	if err := Validate(spec); err != nil {
		return Spec{}, err
	}
	c := Spec{Scenario: spec.Scenario, Seed: spec.Seed}
	switch spec.Scenario {
	case ScenarioVideogame:
		c.Dur = durOr(spec.Dur, defaultVideogameDur)
		c.Engine = engineOr(spec.Engine)
		c.GUI = boolPtr(boolOr(spec.GUI, true))
		c.Frame = durOr(spec.Frame, defaultFrame)
		c.Tick = durOr(spec.Tick, defaultTick)
		c.Tickless = boolPtr(boolOr(spec.Tickless, true))
		c.Step = spec.Step
		c.IdleSleep = spec.IdleSleep
	case ScenarioChaos:
		c.Dur = durOr(spec.Dur, defaultChaosDur)
		c.Engine = engineOr(spec.Engine)
		cs := ChaosSpec{}
		if spec.Chaos != nil {
			cs = *spec.Chaos
		}
		if cs.Seeds <= 0 {
			cs.Seeds = 16
		}
		if cs.Tasks <= 0 {
			cs.Tasks = 6
		}
		if cs.Faults == 0 {
			cs.Faults = 5
		}
		cs.Workers = 0 // pool size never affects results
		if cs.Job != nil {
			j := *cs.Job
			cs.Job = &j
		}
		if cs.Synthetic != nil {
			g := cs.Synthetic.Normalized()
			cs.Synthetic = &g
		}
		c.Chaos = &cs
	case ScenarioExperiments:
		es := ExperimentsSpec{}
		if spec.Experiments != nil {
			es = *spec.Experiments
		}
		sections, err := expandSections(es.Sections)
		if err != nil {
			return Spec{}, err
		}
		es.Sections = sections
		es.SimTime = durOr(es.SimTime, defaultSimTime)
		es.Workers = 0 // pool size never affects results
		c.Experiments = &es
	case ScenarioSynthetic:
		c.Dur = durOr(spec.Dur, defaultSyntheticDur)
		c.Engine = engineOr(spec.Engine)
		c.Tick = durOr(spec.Tick, defaultTick)
		c.Tickless = boolPtr(boolOr(spec.Tickless, true))
		if spec.Synthetic != nil { // absent only for resume_from runs
			syn := SyntheticSpec{}
			if spec.Synthetic.TaskSet != nil {
				ts := *spec.Synthetic.TaskSet
				syn.TaskSet = &ts
			} else {
				g := spec.Synthetic.Gen.Normalized()
				syn.Gen = &g
			}
			c.Synthetic = &syn
		}
	}
	if spec.Checkpoint != nil {
		ck := *spec.Checkpoint
		if ck.ForkSeed != nil {
			s := *ck.ForkSeed
			ck.ForkSeed = &s
		}
		if ck.ResumeFrom != nil {
			ck.ResumeFrom = append([]byte(nil), ck.ResumeFrom...)
		}
		c.Checkpoint = &ck
	}
	if len(spec.Artifacts) > 0 {
		arts := append([]string(nil), spec.Artifacts...)
		sort.Strings(arts)
		arts = dedupSorted(arts)
		c.Artifacts = arts
	}
	return c, nil
}

// CanonicalJSON is the canonical wire encoding: the canonicalized Spec
// marshalled with Go's deterministic struct-field order (declaration
// order; map keys, where any appear in nested task sets, sort). Byte
// equality of two CanonicalJSON outputs is the fleet's definition of
// "the same job".
func CanonicalJSON(spec Spec) ([]byte, error) {
	c, err := Canonicalize(spec)
	if err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// Hash returns the content hash of the canonical encoding as a 64-char
// lowercase hex string (SHA-256). It is the key of the result cache and
// the routing key of the shard ring.
func Hash(spec Spec) (string, error) {
	b, err := CanonicalJSON(spec)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Cacheable reports whether spec's artifacts are reproducible across
// runs and may therefore be served from a content-addressed cache. The
// experiments scenario is the one exception: its report embeds measured
// wall-clock speed columns, so its bytes are only stable within a run.
// Checkpoint runs are excluded too: resume_from payloads are large and
// already one-shot, and keying megabyte snapshots into the hash would
// bloat the cache for jobs nobody resubmits.
func Cacheable(spec Spec) bool {
	return spec.Scenario != ScenarioExperiments && spec.Checkpoint == nil
}

// --- helpers ---

func durOr(d, def Duration) Duration {
	if d <= 0 {
		return def
	}
	return d
}

func engineOr(e string) string {
	if e == "" {
		return opts.EngineGoroutine
	}
	return e
}

func boolPtr(b bool) *bool { return &b }

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
