package run

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/sysc"
)

// executeChaos runs a fault-injection campaign — or, with Chaos.Job set, a
// single-job replay — and harvests summary/repro/trace artifacts.
func executeChaos(ctx context.Context, spec Spec) (Result, error) {
	cs := spec.Chaos
	if cs == nil {
		cs = &ChaosSpec{}
	}
	cfg := chaos.Config{
		Seeds:     cs.Seeds,
		BaseSeed:  spec.Seed,
		Workers:   cs.Workers,
		Dur:       spec.Dur.Sim(),
		Tasks:     cs.Tasks,
		Faults:    cs.Faults,
		Corrupt:   cs.Corrupt,
		Minimize:  cs.Minimize,
		Engine:    spec.Engine,
		Synthetic: cs.Synthetic,
	}
	// Mirror the chaos.Config defaults up front so the Report header (which
	// prints the config) is identical whether the run came from flags or
	// JSON.
	if cfg.Seeds <= 0 {
		cfg.Seeds = 16
	}
	if cfg.Dur <= 0 {
		cfg.Dur = 150 * sysc.Ms
	}
	if cfg.Tasks <= 0 {
		cfg.Tasks = 6
	}
	if cfg.Faults == 0 {
		cfg.Faults = 5
	}

	wall0 := time.Now()
	if cs.Job != nil {
		return chaosReplay(ctx, spec, cfg, *cs.Job, wall0)
	}

	report, runErr := chaos.RunContext(ctx, cfg)
	wall := time.Since(wall0)

	res := Result{
		Stats:     chaosStats(report, wall),
		Artifacts: map[string][]byte{},
	}
	if wants(spec, ArtifactSummary) {
		res.Artifacts[ArtifactSummary] = []byte(report.Summary())
	}
	if wants(spec, ArtifactRepro) {
		res.Artifacts[ArtifactRepro] = renderRepros(report)
	}
	return res, runErr
}

// chaosReplay runs the single-job failure-replay path.
func chaosReplay(ctx context.Context, spec Spec, cfg chaos.Config, job int, wall0 time.Time) (Result, error) {
	var v chaos.Verdict
	var runErr error
	var traceBuf bytes.Buffer
	if wants(spec, ArtifactTrace) {
		v, runErr = chaos.RunJobTraceContext(ctx, cfg, job, &traceBuf)
	} else {
		var ok bool
		v, ok = chaos.RunJobContext(ctx, cfg, job)
		if !ok {
			runErr = context.Cause(ctx)
		}
	}
	wall := time.Since(wall0)

	report := chaos.Report{Cfg: cfg, Verdicts: []chaos.Verdict{v}}
	res := Result{
		Stats:     chaosStats(report, wall),
		Artifacts: map[string][]byte{},
	}
	if wants(spec, ArtifactTrace) {
		res.Artifacts[ArtifactTrace] = traceBuf.Bytes()
	}
	if wants(spec, ArtifactSummary) {
		res.Artifacts[ArtifactSummary] = []byte(report.Summary())
	}
	if wants(spec, ArtifactRepro) {
		res.Artifacts[ArtifactRepro] = renderRepros(report)
	}
	return res, runErr
}

// chaosStats aggregates the campaign's deterministic digests.
func chaosStats(report chaos.Report, wall time.Duration) Stats {
	s := Stats{
		Scenario: ScenarioChaos,
		Wall:     Duration(wall),
		Jobs:     len(report.Verdicts),
		Failures: len(report.Failures()),
	}
	for _, v := range report.Verdicts {
		s.Ticks += v.Ticks
		s.CtxSwitches += v.CtxSwitches
		s.Preemptions += v.Preemptions
		s.Interrupts += v.Interrupts
	}
	simNs := int64(report.Cfg.Dur/sysc.Ns) * int64(len(report.Verdicts))
	s.SimTime = Duration(simNs)
	if wall > 0 {
		s.SimPerWall = (time.Duration(simNs) * time.Nanosecond).Seconds() / wall.Seconds()
	}
	return s
}

// renderRepros concatenates the repro artifacts of every failing job, each
// under a replayable header.
func renderRepros(report chaos.Report) []byte {
	var b bytes.Buffer
	for _, v := range report.Verdicts {
		if v.Pass {
			continue
		}
		fmt.Fprintf(&b, "--- repro for job %d (replay: chaos -seed %d -job %d", v.Index, report.Cfg.BaseSeed, v.Index)
		if report.Cfg.Corrupt {
			fmt.Fprint(&b, " -corrupt")
		}
		fmt.Fprint(&b, ") ---\n")
		fmt.Fprintln(&b, v.Repro)
	}
	return b.Bytes()
}
