package run

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/sysc"
)

// sectionDivider separates experiment sections in the report, matching the
// historical cmd/experiments output.
const sectionDivider = "================================================================"

// experimentSections is the canonical section order, the order "all"
// expands to.
var experimentSections = []string{
	"table1", "table2", "fig6", "fig7", "fig8", "fig4",
	"a1", "a2", "a3", "speed",
}

// executeExperiments regenerates the requested paper tables and figures
// into ArtifactReport. The report embeds wall-clock speed measurements
// (Table 2's R and S/R columns), so unlike the other scenarios its bytes
// are not reproducible across runs — only across transports.
func executeExperiments(ctx context.Context, spec Spec) (Result, error) {
	es := spec.Experiments
	if es == nil {
		es = &ExperimentsSpec{}
	}
	sections, err := expandSections(es.Sections)
	if err != nil {
		return Result{}, err
	}
	simS := es.SimTime.Sim()
	if simS <= 0 {
		simS = 1 * sysc.Sec
	}
	workers := es.Workers
	if workers == 0 {
		workers = 1
	}

	var rep, vcdBuf, metricsBuf bytes.Buffer
	w := &rep
	wall0 := time.Now()
	var runErr error
	for i, sec := range sections {
		// Experiment sections run to completion; the context is honored at
		// section granularity.
		if ctx.Err() != nil {
			runErr = context.Cause(ctx)
			break
		}
		if i > 0 {
			fmt.Fprintln(w, "\n"+sectionDivider)
		}
		switch sec {
		case "table1":
			experiments.Table1(w)
		case "table2":
			cfg := experiments.DefaultTable2Config()
			cfg.SimTime = simS
			cfg.BaseSeed = spec.Seed
			if workers == 1 {
				experiments.Table2(w, cfg)
			} else {
				experiments.Table2Parallel(w, cfg, workers)
			}
		case "fig4":
			if wants(spec, ArtifactVCD) {
				fmt.Fprintf(w, "Figure 4 VCD written to %s\n", ArtifactVCD)
				experiments.Figure4(&vcdBuf, 200*sysc.Ms)
			} else {
				experiments.Figure4(w, 200*sysc.Ms)
			}
		case "fig6":
			experiments.Figure6(w, 100*sysc.Ms)
		case "fig7":
			if wants(spec, ArtifactMetrics) {
				experiments.Figure7Metrics(w, &metricsBuf, 1*sysc.Sec)
				fmt.Fprintf(w, "metrics: per-task report written to %s\n", ArtifactMetrics)
			} else {
				experiments.Figure7(w, 1*sysc.Sec)
			}
		case "fig8":
			experiments.Figure8(w, 500*sysc.Ms)
		case "a1":
			experiments.AblationDelayedDispatch(w, []sysc.Time{
				0, 500 * sysc.Us, 2 * sysc.Ms, 5 * sysc.Ms,
			})
		case "a2":
			experiments.AblationGranularityParallel(w, []sysc.Time{
				100 * sysc.Us, 500 * sysc.Us, 1 * sysc.Ms, 5 * sysc.Ms, 10 * sysc.Ms,
			}, workers)
		case "a3":
			experiments.AblationSchedulers(w)
		case "speed":
			experiments.SpeedComparison(w, simS)
		}
	}
	wall := time.Since(wall0)

	res := Result{
		Stats: Stats{
			Scenario: ScenarioExperiments,
			Wall:     Duration(wall),
		},
		Artifacts: map[string][]byte{},
	}
	if wants(spec, ArtifactReport) {
		res.Artifacts[ArtifactReport] = rep.Bytes()
	}
	if wants(spec, ArtifactVCD) {
		res.Artifacts[ArtifactVCD] = vcdBuf.Bytes()
	}
	if wants(spec, ArtifactMetrics) {
		res.Artifacts[ArtifactMetrics] = metricsBuf.Bytes()
	}
	return res, runErr
}

// expandSections validates the requested sections and expands "all" (or an
// empty list) to the canonical order.
func expandSections(in []string) ([]string, error) {
	if len(in) == 0 {
		return experimentSections, nil
	}
	known := map[string]bool{"all": true}
	for _, s := range experimentSections {
		known[s] = true
	}
	for _, s := range in {
		if !known[s] {
			return nil, fmt.Errorf("run: unknown experiments section %q", s)
		}
		if s == "all" {
			return experimentSections, nil
		}
	}
	return in, nil
}
