package run

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/snapshot"
	"repro/internal/sweep"
)

// SweepSpec describes a seed sweep sharing a common prefix: every variant
// runs Base with the arrival streams reseeded at Prefix. Cold mode
// simulates each variant from scratch (a two-leg checkpoint run per seed);
// warm mode simulates the prefix once per worker, captures an in-memory
// checkpoint at the fork point, and restores+reseeds per seed. The two
// modes produce byte-identical artifacts — warm is purely a wall-clock
// optimization, and the equality is enforced by tests.
type SweepSpec struct {
	// Base is the run every variant executes (synthetic scenario).
	Base Spec `json:"base"`
	// Prefix is the shared-prefix duration — the fork point. Must be
	// positive and before Base.Dur.
	Prefix Duration `json:"prefix"`
	// Seeds are the variant fork seeds, one result each.
	Seeds []uint64 `json:"seeds"`
	// Workers sizes the pool (0 = GOMAXPROCS; never affects results).
	Workers int `json:"workers,omitempty"`
	// Warm forks variants from in-memory checkpoints instead of re-running
	// the prefix per seed. Falls back to cold per-seed runs when the
	// configuration is outside the snapshot envelope (goroutine engine).
	Warm bool `json:"warm,omitempty"`
}

// ExecuteSweep runs the sweep and returns one Result per seed, in seed
// order regardless of worker count or mode.
func ExecuteSweep(ctx context.Context, sw SweepSpec) ([]Result, error) {
	base := sw.Base
	if base.Scenario == "" {
		base.Scenario = ScenarioSynthetic
	}
	if base.Scenario != ScenarioSynthetic {
		return nil, fmt.Errorf("run: sweep requires scenario %q, got %q", ScenarioSynthetic, base.Scenario)
	}
	if base.Checkpoint != nil {
		return nil, fmt.Errorf("run: sweep base must not carry its own checkpoint")
	}
	if sw.Prefix <= 0 {
		return nil, fmt.Errorf("run: sweep requires a positive prefix")
	}
	if d := durOr(base.Dur, defaultSyntheticDur); sw.Prefix >= d {
		return nil, fmt.Errorf("run: sweep prefix (%v) must be before dur (%v)", sw.Prefix, d)
	}
	if len(sw.Seeds) == 0 {
		return nil, nil
	}
	if err := Validate(coldSpec(base, sw.Prefix, sw.Seeds[0])); err != nil {
		return nil, err
	}
	if sw.Warm {
		return warmSweep(ctx, sw, base)
	}
	return coldSweep(ctx, sw, base)
}

// coldSpec is the per-seed cold variant: a two-leg checkpoint run that
// reseeds the arrival streams at the fork point.
func coldSpec(base Spec, prefix Duration, seed uint64) Spec {
	s := seed
	sp := base
	sp.Checkpoint = &CheckpointSpec{At: prefix, ForkSeed: &s}
	return sp
}

// coldSweep runs every variant from scratch across the worker pool.
func coldSweep(ctx context.Context, sw SweepSpec, base Spec) ([]Result, error) {
	type out struct {
		res Result
		err error
	}
	outs, err := sweep.RunContext(ctx, sweep.Runner{Workers: sw.Workers}, sw.Seeds,
		func(_ sweep.Job, seed uint64) out {
			res, e := Execute(ctx, coldSpec(base, sw.Prefix, seed))
			return out{res, e}
		})
	results := make([]Result, len(outs))
	for i, o := range outs {
		results[i] = o.res
		if err == nil && o.err != nil {
			err = o.err
		}
	}
	return results, err
}

// warmSweep splits the seeds into contiguous chunks, one per worker; each
// worker simulates the shared prefix once and forks its chunk's variants
// from the in-memory checkpoint.
func warmSweep(ctx context.Context, sw SweepSpec, base Spec) ([]Result, error) {
	workers := sw.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sw.Seeds) {
		workers = len(sw.Seeds)
	}
	results := make([]Result, len(sw.Seeds))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(sw.Seeds) / workers
		hi := (w + 1) * len(sw.Seeds) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = warmChunk(ctx, sw, base, sw.Seeds[lo:hi], results[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return results, e
		}
	}
	return results, nil
}

// warmChunk runs one worker's seeds against one shared-prefix checkpoint.
func warmChunk(ctx context.Context, sw SweepSpec, base Spec, seeds []uint64, out []Result) error {
	sys := buildSynSystem(base, StreamOptions{})
	defer sys.sim.Shutdown()
	if err := sys.sim.StartContext(ctx, sw.Prefix.Sim()); err != nil {
		return err
	}
	st, err := snapshot.Capture(sys.snapSystem())
	if errors.Is(err, snapshot.ErrUnsnapshottable) {
		// Outside the snapshot envelope: run this chunk cold instead.
		for i, seed := range seeds {
			res, e := Execute(ctx, coldSpec(base, sw.Prefix, seed))
			if e != nil {
				return e
			}
			out[i] = res
		}
		return nil
	}
	if err != nil {
		return err
	}
	for i, seed := range seeds {
		if err := snapshot.Fork(sys.snapSystem(), st, seed); err != nil {
			return err
		}
		wall0 := time.Now()
		if err := sys.sim.StartContext(ctx, sys.dur); err != nil {
			return err
		}
		res := sys.result(time.Since(wall0))
		var runErr error
		sys.harvest(&res, &runErr, false)
		if runErr != nil {
			return runErr
		}
		out[i] = res
	}
	return nil
}
