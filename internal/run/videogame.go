package run

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/app"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/sysc"
	"repro/internal/tkds"
	"repro/internal/trace"
)

// ganttLimit bounds the recorded trace segments, matching the historical
// rtkspec cap.
const ganttLimit = 500000

// ganttWindow is the rendered window of ArtifactGantt: the first 100 ms,
// the paper's Figure 6 view.
const ganttWindow = 100 * sysc.Ms

// executeVideogame runs the paper's case study (Section 5.2) and harvests
// the requested artifacts. Everything written into an artifact derives
// from simulated state only. Artifacts with a sink in o stream out
// incrementally and are omitted from the returned map; the bytes either
// way are identical because the same exporter drives both paths.
func executeVideogame(ctx context.Context, spec Spec, o StreamOptions) (Result, error) {
	dur := spec.Dur.Sim()
	if dur <= 0 {
		dur = 1 * sysc.Sec
	}

	bus := event.NewBus()
	var traceBuf bytes.Buffer
	traceSink := o.sink(ArtifactTrace)
	var pf *trace.Perfetto
	if wants(spec, ArtifactTrace) {
		w := io.Writer(&traceBuf)
		if traceSink != nil {
			w = traceSink
		}
		pf = trace.AttachPerfetto(bus, w)
	}
	var coll *metrics.Collector
	if wants(spec, ArtifactMetrics) {
		coll = metrics.Attach(bus)
	}
	var g *trace.Gantt
	if wants(spec, ArtifactGantt) {
		g = trace.NewGantt()
		g.SetLimit(ganttLimit)
	}
	var vcd *trace.VCD
	if wants(spec, ArtifactVCD) {
		vcd = trace.NewVCD()
	}

	cfg := app.DefaultConfig()
	cfg.GUI = boolOr(spec.GUI, true)
	if spec.Frame != 0 {
		cfg.FramePeriod = spec.Frame.Sim()
	}
	cfg.Tick = spec.Tick.Sim()
	cfg.DisableTickless = !boolOr(spec.Tickless, true)
	cfg.IdleSleep = spec.IdleSleep.Sim()
	cfg.Seed = spec.Seed
	cfg.Engine = spec.Engine
	cfg.Bus = bus
	cfg.Gantt = g
	cfg.VCD = vcd
	a := app.Build(cfg)
	defer a.Shutdown()

	wall0 := time.Now()
	statsNow := func() Stats {
		simNs := time.Duration(a.Sim.Now() / sysc.Ns)
		wall := time.Since(wall0)
		st := Stats{
			Scenario:    ScenarioVideogame,
			SimTime:     Duration(simNs),
			Wall:        Duration(wall),
			Ticks:       a.K.Ticks(),
			CtxSwitches: a.K.API().ContextSwitches(),
			Preemptions: a.K.API().Preemptions(),
			Interrupts:  a.K.API().Interrupts(),
			Frames:      a.Frames(),
			Score:       a.Score(),
			Bonus:       a.Bonus(),
		}
		if wall > 0 {
			st.SimPerWall = simNs.Seconds() / wall.Seconds()
		}
		return st
	}
	progress := func() { o.Progress(statsNow()) }
	if o.Progress == nil {
		progress = nil
	}
	every := o.progressGrid(dur)

	var runErr error
	if spec.Step {
		// Step mode: advance in steps of the system tick rather than
		// animate mode, as the paper prescribes for trace viewing.
		tick := a.K.Tick()
		next := every
		for t := tick; t <= dur; t += tick {
			if runErr = a.RunContext(ctx, t); runErr != nil {
				break
			}
			if progress != nil && t >= next && t < dur {
				progress()
				next += every
			}
		}
	} else if ck := spec.Checkpoint; ck != nil && ck.At > 0 && ck.At.Sim() < dur {
		// Two-leg checkpoint run: pause at a quiescent point and continue.
		// The byte-equality contract demands this is unobservable — the
		// property tests compare its artifacts against the one-leg run.
		if runErr = a.RunContext(ctx, ck.At.Sim()); runErr == nil {
			runErr = driveProgress(ctx, ck.At.Sim(), dur, every, a.RunContext, progress)
		}
	} else {
		runErr = driveProgress(ctx, 0, dur, every, a.RunContext, progress)
	}

	res := Result{Stats: statsNow(), Artifacts: map[string][]byte{}}

	if pf != nil {
		if err := pf.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("run: trace: %w", err)
		}
		res.Stats.TraceEvents = pf.Events()
		if traceSink == nil {
			res.Artifacts[ArtifactTrace] = traceBuf.Bytes()
		}
	}
	if coll != nil {
		if w := o.sink(ArtifactMetrics); w != nil {
			if err := coll.WriteJSON(w); err != nil && runErr == nil {
				runErr = fmt.Errorf("run: metrics: %w", err)
			}
		} else {
			var buf bytes.Buffer
			if err := coll.WriteJSON(&buf); err != nil && runErr == nil {
				runErr = fmt.Errorf("run: metrics: %w", err)
			}
			res.Artifacts[ArtifactMetrics] = buf.Bytes()
		}
	}
	if g != nil {
		var buf bytes.Buffer
		g.Render(&buf, 0, ganttWindow, 100)
		res.Artifacts[ArtifactGantt] = buf.Bytes()
	}
	if vcd != nil {
		var buf bytes.Buffer
		vcd.Render(&buf)
		res.Stats.VCDChanges = vcd.Len()
		res.Artifacts[ArtifactVCD] = buf.Bytes()
	}
	if wants(spec, ArtifactDS) {
		var buf bytes.Buffer
		tkds.New(a.K).Listing(&buf)
		res.Artifacts[ArtifactDS] = buf.Bytes()
	}
	if wants(spec, ArtifactConsole) {
		res.Artifacts[ArtifactConsole] = renderConsole(a)
	}
	return res, runErr
}

// renderConsole builds the deterministic end-of-run console block: the
// game/kernel digest plus the rendered LCD, SSD and battery widgets.
func renderConsole(a *app.App) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "game: frames=%d score=%d bonus=%d  kernel: ticks=%d ctxsw=%d preempt=%d irq=%d\n\n",
		a.Frames(), a.Score(), a.Bonus(), a.K.Ticks(),
		a.K.API().ContextSwitches(), a.K.API().Preemptions(), a.K.API().Interrupts())
	fmt.Fprintln(&b, a.LCDW.RenderText())
	fmt.Fprintln(&b, "SSD:", a.SSDW.RenderText())
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, a.Battery.RenderText())
	return b.Bytes()
}
