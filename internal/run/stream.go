package run

import (
	"context"
	"fmt"
	"io"

	"repro/internal/sysc"
)

// This file is the façade's streaming surface. Execute buffers every
// artifact into the returned bytes map; ExecuteStream lets the caller
// attach incremental sinks instead — the trace exporter and the metrics
// encoder write straight into them from their bus subscribers, so an
// arbitrarily long run never accumulates those artifacts in memory. The
// byte contract is unchanged: a sink receives exactly the bytes the
// buffered artifact would have held, because both paths drive the same
// exporter against a different io.Writer.

// Sinks maps artifact names (Artifact* constants) to incremental sinks.
// An artifact with a sink is written as the run produces it and omitted
// from Result.Artifacts; everything else stays buffered.
type Sinks map[string]io.Writer

// StreamOptions parameterizes ExecuteStream beyond the pure-data Spec:
// where streamed artifacts go and how run progress is observed. The
// options never influence artifact bytes — they only choose transport
// (sinks) and add observation (progress pauses at quiescent points,
// which are unobservable by the checkpoint byte-equality contract).
type StreamOptions struct {
	// Sinks receive streamable artifacts incrementally. Every key must
	// name a requested artifact the scenario can stream (Streamable).
	Sinks Sinks
	// Progress, when non-nil, is called with a Stats snapshot at
	// ProgressEvery boundaries of simulated time. The simulation pauses at
	// a quiescent point to take the snapshot, exactly as a checkpoint run
	// does; the pause is unobservable in every artifact. Supported by the
	// videogame and synthetic scenarios.
	Progress func(Stats)
	// ProgressEvery is the simulated time between progress snapshots
	// (default: an eighth of the run duration).
	ProgressEvery Duration
}

// streamableArtifacts maps each scenario to the artifacts it can emit
// incrementally. Trace is a true streaming producer (one JSON record per
// bus event); metrics keeps O(tasks) state and encodes its report into
// the sink at the end of the run — either way the server never holds the
// artifact bytes.
var streamableArtifacts = map[Scenario]map[string]bool{
	ScenarioVideogame: {ArtifactTrace: true, ArtifactMetrics: true},
	ScenarioSynthetic: {ArtifactTrace: true, ArtifactMetrics: true},
}

// Streamable reports whether the scenario can emit the named artifact
// incrementally through a sink.
func Streamable(sc Scenario, name string) bool {
	if sc == "" {
		sc = ScenarioVideogame
	}
	return streamableArtifacts[sc][name]
}

// StreamableArtifacts returns the spec's requested artifacts that its
// scenario can stream, in request order.
func StreamableArtifacts(spec Spec) []string {
	var out []string
	for _, a := range spec.Artifacts {
		if Streamable(spec.Scenario, a) {
			out = append(out, a)
		}
	}
	return out
}

// ExecuteStream is Execute with streaming attachments: artifacts with a
// sink are emitted incrementally and omitted from the result map, and a
// progress callback observes Stats snapshots mid-run. A zero opts is
// exactly Execute.
func ExecuteStream(ctx context.Context, spec Spec, o StreamOptions) (Result, error) {
	if spec.Scenario == "" {
		spec.Scenario = ScenarioVideogame
	}
	if err := Validate(spec); err != nil {
		return Result{}, err
	}
	for name := range o.Sinks {
		if !wants(spec, name) {
			return Result{}, fmt.Errorf("run: sink for artifact %q the spec does not request", name)
		}
		if !Streamable(spec.Scenario, name) {
			return Result{}, fmt.Errorf("run: scenario %q cannot stream artifact %q", spec.Scenario, name)
		}
	}
	if len(o.Sinks) > 0 && spec.Checkpoint != nil {
		return Result{}, fmt.Errorf("run: streaming sinks and checkpoints are exclusive")
	}
	if spec.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Deadline.Std())
		defer cancel()
	}
	switch spec.Scenario {
	case ScenarioVideogame:
		return executeVideogame(ctx, spec, o)
	case ScenarioChaos:
		return executeChaos(ctx, spec)
	case ScenarioExperiments:
		return executeExperiments(ctx, spec)
	case ScenarioSynthetic:
		return executeSynthetic(ctx, spec, o)
	default:
		return Result{}, fmt.Errorf("run: unknown scenario %q", spec.Scenario)
	}
}

// sink returns the configured sink for an artifact, nil when buffered.
func (o *StreamOptions) sink(name string) io.Writer {
	return o.Sinks[name]
}

// progressGrid resolves the snapshot period against the run duration.
func (o *StreamOptions) progressGrid(dur sysc.Time) sysc.Time {
	every := o.ProgressEvery.Sim()
	if every <= 0 {
		every = dur / 8
	}
	if every <= 0 {
		every = dur
	}
	return every
}

// driveProgress advances the simulation from `from` to `to` through
// runTo (an absolute-target drive function), pausing on the progress
// grid to publish a snapshot. Without a progress sink it is a single
// drive call — the buffered fast path. The pauses land at quiescent
// points, the same mechanism as a checkpoint's two-leg run, so they are
// unobservable in every artifact (enforced by TestStreamByteIdentical).
func driveProgress(ctx context.Context, from, to, every sysc.Time,
	runTo func(context.Context, sysc.Time) error, progress func()) error {
	if progress == nil {
		return runTo(ctx, to)
	}
	for t := from + every; t < to; t += every {
		if err := runTo(ctx, t); err != nil {
			return err
		}
		progress()
	}
	return runTo(ctx, to)
}
