package run

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/sweep"
	"repro/internal/sysc"
	"repro/internal/tkernel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// genStream is the sweep.Seed stream index the synthetic scenario draws a
// generated TaskSet from (streams 0 and 1 belong to the chaos app and fault
// schedule; interrupt device models start at workload's own base).
const genStream = 2

// resolveTaskSet returns the concrete TaskSet a synthetic spec runs: the
// inline set, or the generator draw from stream genStream of the run seed.
func resolveTaskSet(spec Spec) *workload.TaskSet {
	if spec.Synthetic.TaskSet != nil {
		return spec.Synthetic.TaskSet
	}
	return workload.Generate(sweep.NewRNG(sweep.Seed(spec.Seed, genStream)), *spec.Synthetic.Gen)
}

// executeSynthetic runs a declarative workload on a bare kernel and
// harvests the requested artifacts. Like every scenario, the artifacts are
// a pure function of the Spec: the task set resolves deterministically and
// everything stochastic inside the run draws from seeded streams.
func executeSynthetic(ctx context.Context, spec Spec) (Result, error) {
	dur := spec.Dur.Sim()
	if dur <= 0 {
		dur = 1 * sysc.Sec
	}
	ts := resolveTaskSet(spec)

	bus := event.NewBus()
	var traceBuf bytes.Buffer
	var pf *trace.Perfetto
	if wants(spec, ArtifactTrace) {
		pf = trace.AttachPerfetto(bus, &traceBuf)
	}
	var coll *metrics.Collector
	if wants(spec, ArtifactMetrics) {
		coll = metrics.Attach(bus)
	}
	var g *trace.Gantt
	if wants(spec, ArtifactGantt) {
		g = trace.NewGantt()
		g.SetLimit(ganttLimit)
	}

	sim := sysc.NewSimulator()
	defer sim.Shutdown()
	kcfg := tkernel.Config{Costs: tkernel.DefaultCosts()}
	kcfg.Engine = spec.Engine
	kcfg.Tick = spec.Tick.Sim()
	kcfg.DisableTickless = !boolOr(spec.Tickless, true)
	kcfg.Bus = bus
	kcfg.Gantt = g
	k := tkernel.New(sim, kcfg)
	inst := workload.Build(sim, k, ts, spec.Seed)

	wall0 := time.Now()
	runErr := sim.StartContext(ctx, dur)
	wall := time.Since(wall0)

	simNs := time.Duration(sim.Now() / sysc.Ns)
	res := Result{
		Stats: Stats{
			Scenario:    ScenarioSynthetic,
			SimTime:     Duration(simNs),
			Wall:        Duration(wall),
			Ticks:       k.Ticks(),
			CtxSwitches: k.API().ContextSwitches(),
			Preemptions: k.API().Preemptions(),
			Interrupts:  k.API().Interrupts(),
			Activations: inst.Activations(),
		},
		Artifacts: map[string][]byte{},
	}
	if wall > 0 {
		res.Stats.SimPerWall = simNs.Seconds() / wall.Seconds()
	}

	if pf != nil {
		if err := pf.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("run: trace: %w", err)
		}
		res.Stats.TraceEvents = pf.Events()
		res.Artifacts[ArtifactTrace] = traceBuf.Bytes()
	}
	if coll != nil {
		var buf bytes.Buffer
		if err := coll.WriteJSON(&buf); err != nil && runErr == nil {
			runErr = fmt.Errorf("run: metrics: %w", err)
		}
		res.Artifacts[ArtifactMetrics] = buf.Bytes()
	}
	if g != nil {
		var buf bytes.Buffer
		g.Render(&buf, 0, ganttWindow, 100)
		res.Artifacts[ArtifactGantt] = buf.Bytes()
	}
	if wants(spec, ArtifactTaskSet) {
		b, err := json.MarshalIndent(ts, "", "  ")
		if err != nil && runErr == nil {
			runErr = fmt.Errorf("run: taskset: %w", err)
		}
		res.Artifacts[ArtifactTaskSet] = append(b, '\n')
	}
	return res, runErr
}
