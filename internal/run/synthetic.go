package run

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/snapshot"
	"repro/internal/sweep"
	"repro/internal/sysc"
	"repro/internal/tkernel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// genStream is the sweep.Seed stream index the synthetic scenario draws a
// generated TaskSet from (streams 0 and 1 belong to the chaos app and fault
// schedule; interrupt device models start at workload's own base).
const genStream = 2

// resolveTaskSet returns the concrete TaskSet a synthetic spec runs: the
// inline set, or the generator draw from stream genStream of the run seed.
func resolveTaskSet(spec Spec) *workload.TaskSet {
	if spec.Synthetic.TaskSet != nil {
		return spec.Synthetic.TaskSet
	}
	return workload.Generate(sweep.NewRNG(sweep.Seed(spec.Seed, genStream)), *spec.Synthetic.Gen)
}

// synSystem is one constructed synthetic run: simulator, kernel, lowered
// workload and the observers the spec's artifact list asked for. Splitting
// construction (buildSynSystem) from driving and harvesting lets the
// checkpoint paths — two-leg runs, snapshot capture, resume-and-verify,
// warm sweep forking — share exactly the cold path's build.
type synSystem struct {
	spec Spec
	dur  sysc.Time
	ts   *workload.TaskSet

	bus         *event.Bus
	traceBuf    bytes.Buffer
	traceSink   io.Writer
	metricsSink io.Writer
	pf          *trace.Perfetto
	coll        *metrics.Collector
	g           *trace.Gantt

	sim  *sysc.Simulator
	k    *tkernel.Kernel
	inst *workload.Instance
}

// buildSynSystem constructs the synthetic system described by spec without
// running it. The caller owns shutdown (defer sys.sim.Shutdown()). Artifacts
// with a sink in o stream out incrementally instead of buffering.
func buildSynSystem(spec Spec, o StreamOptions) *synSystem {
	s := &synSystem{spec: spec, dur: spec.Dur.Sim()}
	if s.dur <= 0 {
		s.dur = 1 * sysc.Sec
	}
	s.ts = resolveTaskSet(spec)

	s.bus = event.NewBus()
	if wants(spec, ArtifactTrace) {
		w := io.Writer(&s.traceBuf)
		if s.traceSink = o.sink(ArtifactTrace); s.traceSink != nil {
			w = s.traceSink
		}
		s.pf = trace.AttachPerfetto(s.bus, w)
	}
	s.metricsSink = o.sink(ArtifactMetrics)
	if wants(spec, ArtifactMetrics) {
		s.coll = metrics.Attach(s.bus)
	}
	if wants(spec, ArtifactGantt) {
		s.g = trace.NewGantt()
		s.g.SetLimit(ganttLimit)
	}

	s.sim = sysc.NewSimulator()
	kcfg := tkernel.Config{Costs: tkernel.DefaultCosts()}
	kcfg.Engine = spec.Engine
	kcfg.Tick = spec.Tick.Sim()
	kcfg.DisableTickless = !boolOr(spec.Tickless, true)
	kcfg.Bus = s.bus
	kcfg.Gantt = s.g
	s.k = tkernel.New(s.sim, kcfg)
	s.inst = workload.Build(s.sim, s.k, s.ts, spec.Seed)
	return s
}

// snapSystem bundles the live pieces for the snapshot layer.
func (s *synSystem) snapSystem() snapshot.System {
	return snapshot.System{
		Sim: s.sim, Kernel: s.k, Inst: s.inst,
		Gantt: s.g, Perfetto: s.pf, TraceBuf: &s.traceBuf, Metrics: s.coll,
	}
}

// stats assembles the deterministic stats digest at the current sim time.
func (s *synSystem) stats(wall time.Duration) Stats {
	simNs := time.Duration(s.sim.Now() / sysc.Ns)
	st := Stats{
		Scenario:    ScenarioSynthetic,
		SimTime:     Duration(simNs),
		Wall:        Duration(wall),
		Ticks:       s.k.Ticks(),
		CtxSwitches: s.k.API().ContextSwitches(),
		Preemptions: s.k.API().Preemptions(),
		Interrupts:  s.k.API().Interrupts(),
		Activations: s.inst.Activations(),
	}
	if wall > 0 {
		st.SimPerWall = simNs.Seconds() / wall.Seconds()
	}
	return st
}

// result wraps the stats digest for artifact harvesting.
func (s *synSystem) result(wall time.Duration) Result {
	return Result{Stats: s.stats(wall), Artifacts: map[string][]byte{}}
}

// harvest collects the requested artifacts into res. closeTrace selects how
// the Perfetto array is terminated: true detaches and closes the exporter
// (the normal end-of-run path); false leaves it attached — it flushes and
// copies the buffer, appending the same "\n]\n" terminator Close would
// write, so a warm-sweep worker can harvest one forked variant and keep the
// exporter alive for the next. Both paths produce identical bytes.
func (s *synSystem) harvest(res *Result, runErr *error, closeTrace bool) {
	if s.pf != nil {
		if closeTrace {
			if err := s.pf.Close(); err != nil && *runErr == nil {
				*runErr = fmt.Errorf("run: trace: %w", err)
			}
			if s.traceSink == nil {
				res.Artifacts[ArtifactTrace] = s.traceBuf.Bytes()
			}
		} else {
			if err := s.pf.Flush(); err != nil && *runErr == nil {
				*runErr = fmt.Errorf("run: trace: %w", err)
			}
			out := append([]byte(nil), s.traceBuf.Bytes()...)
			res.Artifacts[ArtifactTrace] = append(out, "\n]\n"...)
		}
		res.Stats.TraceEvents = s.pf.Events()
	}
	if s.coll != nil {
		if s.metricsSink != nil {
			if err := s.coll.WriteJSON(s.metricsSink); err != nil && *runErr == nil {
				*runErr = fmt.Errorf("run: metrics: %w", err)
			}
		} else {
			var buf bytes.Buffer
			if err := s.coll.WriteJSON(&buf); err != nil && *runErr == nil {
				*runErr = fmt.Errorf("run: metrics: %w", err)
			}
			res.Artifacts[ArtifactMetrics] = buf.Bytes()
		}
	}
	if s.g != nil {
		var buf bytes.Buffer
		s.g.Render(&buf, 0, ganttWindow, 100)
		res.Artifacts[ArtifactGantt] = buf.Bytes()
	}
	if wants(s.spec, ArtifactTaskSet) {
		b, err := json.MarshalIndent(s.ts, "", "  ")
		if err != nil && *runErr == nil {
			*runErr = fmt.Errorf("run: taskset: %w", err)
		}
		res.Artifacts[ArtifactTaskSet] = append(b, '\n')
	}
}

// encodeSnapshot captures the system at the current quiescent point and
// encodes the versioned binary snapshot, embedding the producing spec in
// canonical form with the checkpoint and artifact requests erased — the
// embedded spec describes the plain run whose replay reproduces this state.
func (s *synSystem) encodeSnapshot() ([]byte, error) {
	st, err := snapshot.Capture(s.snapSystem())
	if err != nil {
		return nil, err
	}
	emb := s.spec
	emb.Checkpoint = nil
	emb.Artifacts = nil
	emb.Deadline = 0
	specJSON, err := CanonicalJSON(emb)
	if err != nil {
		return nil, err
	}
	return snapshot.Encode(s.snapSystem(), st, snapshot.Meta{
		Engine: s.k.Engine(),
		At:     int64(s.sim.Now()),
		Spec:   specJSON,
	})
}

// executeSynthetic runs a declarative workload on a bare kernel and
// harvests the requested artifacts. Like every scenario, the artifacts are
// a pure function of the Spec: the task set resolves deterministically and
// everything stochastic inside the run draws from seeded streams. A
// Checkpoint splits the run in two legs at a quiescent point — capturing a
// snapshot and/or reseeding the arrival streams there — or resumes a
// previously captured snapshot.
func executeSynthetic(ctx context.Context, spec Spec, o StreamOptions) (Result, error) {
	if ck := spec.Checkpoint; ck != nil && ck.ResumeFrom != nil {
		return executeResume(ctx, spec, o)
	}
	sys := buildSynSystem(spec, o)
	defer sys.sim.Shutdown()

	wall0 := time.Now()
	progress := func() { o.Progress(sys.stats(time.Since(wall0))) }
	if o.Progress == nil {
		progress = nil
	}
	every := o.progressGrid(sys.dur)

	var runErr error
	var snap []byte
	if ck := spec.Checkpoint; ck != nil && ck.At > 0 {
		at := ck.At.Sim()
		if at >= sys.dur {
			return Result{}, fmt.Errorf("run: checkpoint.at (%v) must be before dur (%v)", ck.At, Duration(sys.dur/sysc.Ns))
		}
		runErr = sys.sim.StartContext(ctx, at)
		if runErr == nil && wants(spec, ArtifactSnapshot) {
			snap, runErr = sys.encodeSnapshot()
		}
		if runErr == nil {
			if ck.ForkSeed != nil {
				sys.inst.Reseed(*ck.ForkSeed)
			}
			runErr = driveProgress(ctx, at, sys.dur, every, sys.sim.StartContext, progress)
		}
	} else {
		runErr = driveProgress(ctx, 0, sys.dur, every, sys.sim.StartContext, progress)
	}
	wall := time.Since(wall0)

	res := sys.result(wall)
	sys.harvest(&res, &runErr, true)
	if snap != nil {
		res.Artifacts[ArtifactSnapshot] = snap
	}
	return res, runErr
}

// executeResume rebuilds the donor system from the spec embedded in the
// snapshot, replays it to the capture point, verifies the replayed state
// byte-matches the snapshot (a self-checking restore), then continues to
// the outer spec's duration with the outer spec's artifact requests. An
// optional ForkSeed reseeds the arrival streams at the capture point, so a
// resume can both continue a run exactly and fork variants from it.
func executeResume(ctx context.Context, spec Spec, o StreamOptions) (Result, error) {
	ck := spec.Checkpoint
	meta, err := snapshot.DecodeMeta(ck.ResumeFrom)
	if err != nil {
		return Result{}, err
	}
	var inner Spec
	if err := json.Unmarshal(meta.Spec, &inner); err != nil {
		return Result{}, fmt.Errorf("%w: embedded spec: %v", snapshot.ErrCorrupt, err)
	}
	if inner.Scenario != ScenarioSynthetic {
		return Result{}, fmt.Errorf("%w: snapshot from scenario %q", snapshot.ErrIncompatible, inner.Scenario)
	}
	dur := spec.Dur.Sim()
	if dur <= 0 {
		dur = 1 * sysc.Sec
	}
	at := sysc.Time(meta.At)
	if at >= dur {
		return Result{}, fmt.Errorf("run: resume snapshot taken at %v, dur (%v) must be later",
			Duration(at/sysc.Ns), Duration(dur/sysc.Ns))
	}

	// The donor spec drives construction (task set, seed, engine, tick);
	// the outer spec decides which observers to attach and how far to run.
	build := inner
	build.Dur = spec.Dur
	build.Artifacts = spec.Artifacts
	sys := buildSynSystem(build, StreamOptions{})
	defer sys.sim.Shutdown()

	wall0 := time.Now()
	progress := func() { o.Progress(sys.stats(time.Since(wall0))) }
	if o.Progress == nil {
		progress = nil
	}

	runErr := sys.sim.StartContext(ctx, at)
	if runErr == nil {
		if err := snapshot.Verify(sys.snapSystem(), ck.ResumeFrom); err != nil {
			return Result{}, err
		}
		if ck.ForkSeed != nil {
			sys.inst.Reseed(*ck.ForkSeed)
		}
		runErr = driveProgress(ctx, at, dur, o.progressGrid(dur), sys.sim.StartContext, progress)
	}
	wall := time.Since(wall0)

	res := sys.result(wall)
	sys.harvest(&res, &runErr, true)
	return res, runErr
}
