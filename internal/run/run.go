// Package run is the unified simulation façade: one pure-data Spec, one
// Execute call. Every entry point — cmd/rtkspec, cmd/chaos,
// cmd/experiments and the internal/server job service — builds its runs
// through Execute, so a run submitted over HTTP is constructed by exactly
// the code path a CLI run uses.
//
// Determinism is the contract: Execute is a pure function of its Spec (up
// to the wall-clock fields of Stats, which never feed an artifact), so the
// same Spec produces byte-identical artifacts whether it arrives via flag
// parsing or via JSON over HTTP.
package run

import (
	"context"
	"fmt"

	"repro/internal/run/opts"
	"repro/internal/workload"
)

// CommonOptions re-exports the construction knob set shared by
// tkernel.Config, rtk.Config and app.Config (see internal/run/opts; the
// alias exists so kernel layers below this package can embed the same
// struct without an import cycle).
type CommonOptions = opts.CommonOptions

// Scenario names a workload Execute knows how to build.
type Scenario string

// Scenarios.
const (
	// ScenarioVideogame is the paper's case study: RTK-Spec TRON + i8051
	// BFM + GUI widgets + the video game (the default).
	ScenarioVideogame Scenario = "videogame"
	// ScenarioChaos runs a deterministic fault-injection campaign (or a
	// single-job replay) with live invariant oracles.
	ScenarioChaos Scenario = "chaos"
	// ScenarioExperiments regenerates the paper's tables and figures.
	ScenarioExperiments Scenario = "experiments"
	// ScenarioSynthetic runs a declarative workload.TaskSet — hand-written
	// or drawn by the seeded generator — on a bare kernel.
	ScenarioSynthetic Scenario = "synthetic"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("250ms") and unmarshals from either a string or integer nanoseconds, so
// hand-written JSON specs stay legible (defined in internal/run/opts so
// spec-bearing packages below the façade share the wire representation).
type Duration = opts.Duration

// Artifact names a deterministic output a Spec can request. Unknown names
// are rejected by Execute, and each scenario documents which names it can
// produce.
const (
	// ArtifactTrace is the streaming Perfetto/Chrome trace-event JSON
	// (videogame; chaos single-job replay). Load at ui.perfetto.dev.
	ArtifactTrace = "trace.json"
	// ArtifactMetrics is the per-task scheduling-metrics JSON report
	// (videogame; experiments with the fig7 section).
	ArtifactMetrics = "metrics.json"
	// ArtifactGantt is the rendered execution time/energy trace of the
	// first 100 ms (videogame).
	ArtifactGantt = "gantt.txt"
	// ArtifactVCD is the BFM signal waveform in VCD format (videogame;
	// experiments with the fig4 section).
	ArtifactVCD = "wave.vcd"
	// ArtifactDS is the T-Kernel/DS debugger-support listing rendered at
	// the end of the run (videogame).
	ArtifactDS = "ds.txt"
	// ArtifactConsole is the deterministic end-of-run console block: game
	// digest plus rendered LCD, SSD and battery widgets (videogame).
	ArtifactConsole = "console.txt"
	// ArtifactSummary is the campaign verdict table (chaos).
	ArtifactSummary = "summary.txt"
	// ArtifactRepro holds the replayable failure repros of every failing
	// job (chaos; empty campaign failures produce no entry).
	ArtifactRepro = "repro.txt"
	// ArtifactReport is the rendered tables/figures text (experiments).
	ArtifactReport = "report.txt"
	// ArtifactTaskSet is the fully resolved workload.TaskSet that ran —
	// for generated sets, the concrete draw — as indented JSON (synthetic).
	ArtifactTaskSet = "taskset.json"
	// ArtifactSnapshot is the versioned binary kernel snapshot captured at
	// Checkpoint.At (synthetic, continuation engine only). Feed it back via
	// Checkpoint.ResumeFrom to continue the run without re-simulating the
	// prefix.
	ArtifactSnapshot = "snapshot.bin"
)

// Spec is a complete, pure-data description of one run: scenario, seed,
// duration, model knobs, fault plan and the artifacts to produce. It is
// the JSON wire format of the job server and the target the CLIs lower
// their flags into.
type Spec struct {
	// Scenario selects the workload (default ScenarioVideogame).
	Scenario Scenario `json:"scenario,omitempty"`
	// Dur is the simulated duration: of the whole run for videogame
	// (default 1s), of each job for chaos (default 150ms). Ignored by
	// experiments (see ExperimentsSpec.SimTime).
	Dur Duration `json:"dur,omitempty"`
	// Seed drives every random draw of the run (synthetic user input,
	// chaos schedules, sweep points). 0 is the fixed legacy pattern.
	Seed uint64 `json:"seed,omitempty"`
	// Engine selects the T-THREAD execution engine: "goroutine" (the
	// reference engine, the default) or "continuation" (step-function
	// bodies driven inline by the scheduler loop — same artifacts, no
	// goroutine per thread). Videogame and chaos scenarios.
	Engine string `json:"engine,omitempty"`
	// Deadline caps the run's wall-clock time: when it expires the
	// simulation stops at the next quiescent point and Execute returns
	// partial results with the context error. 0 means no deadline (the
	// server may still impose its own).
	Deadline Duration `json:"deadline,omitempty"`

	// GUI models the widget layer's host overhead (videogame; default
	// true).
	GUI *bool `json:"gui,omitempty"`
	// Frame is the LCD frame period — the widget-driving BFM access rate
	// (videogame; default 10ms).
	Frame Duration `json:"frame,omitempty"`
	// Tick overrides the BFM real-time-clock resolution driving the kernel
	// tick (videogame; default 1ms).
	Tick Duration `json:"tick,omitempty"`
	// Tickless enables the clock fast-forward across provably idle ticks
	// (videogame; default true).
	Tickless *bool `json:"tickless,omitempty"`
	// Step advances tick by tick instead of animate mode, as the paper
	// prescribes for trace viewing (videogame).
	Step bool `json:"step,omitempty"`
	// IdleSleep makes the idle task block in tk_dly_tsk for this long per
	// loop instead of busy work (videogame; 0 keeps the busy idle loop).
	IdleSleep Duration `json:"idle_sleep,omitempty"`

	// Synthetic selects the declarative workload (synthetic scenario
	// only): an inline TaskSet or generator parameters.
	Synthetic *SyntheticSpec `json:"synthetic,omitempty"`
	// Chaos parameterizes the fault plan (chaos scenario only).
	Chaos *ChaosSpec `json:"chaos,omitempty"`
	// Experiments selects the tables/figures to regenerate (experiments
	// scenario only).
	Experiments *ExperimentsSpec `json:"experiments,omitempty"`

	// Checkpoint requests snapshot/restore behavior: capture the run's
	// state at a quiescent point, fork a variant there, or resume from a
	// previously captured snapshot (videogame and synthetic scenarios; see
	// CheckpointSpec for which fields each supports).
	Checkpoint *CheckpointSpec `json:"checkpoint,omitempty"`

	// Stream asks the job server to emit this run's streamable artifacts
	// (trace, metrics) incrementally — chunked artifact downloads while
	// the job runs — instead of buffering them whole. It never changes
	// artifact bytes (Canonicalize erases it, so a streamed and a buffered
	// submission share one content hash and one cache entry), and the run
	// façade itself ignores it: transport is the caller's choice, made by
	// passing sinks to ExecuteStream. Exclusive with Checkpoint.
	Stream bool `json:"stream,omitempty"`

	// Artifacts lists the outputs to produce (Artifact* names). Empty
	// means stats only.
	Artifacts []string `json:"artifacts,omitempty"`
}

// CheckpointSpec parameterizes snapshot/restore. The byte-equality
// contract: a run with At set produces exactly the artifacts of the same
// run without it (the simulation pauses at a quiescent point and
// continues — nothing observable changes), and a run resumed from the
// captured snapshot produces exactly the suffix the donor run would have.
type CheckpointSpec struct {
	// At pauses the simulation at this simulated time (a quiescent point)
	// and, for the synthetic scenario with ArtifactSnapshot requested,
	// captures the binary snapshot there. Must be less than Dur.
	At Duration `json:"at,omitempty"`
	// ForkSeed, when non-nil, reseeds the workload's arrival streams at
	// the checkpoint — the explicit variant-fork knob of a warm-start
	// sweep. Synthetic scenario only.
	ForkSeed *uint64 `json:"fork_seed,omitempty"`
	// ResumeFrom is a snapshot previously captured via At +
	// ArtifactSnapshot. The run rebuilds the donor's system from the
	// spec embedded in the snapshot, restores, verifies, and continues to
	// Dur. Exclusive with At. Synthetic scenario only. (JSON: base64, per
	// encoding/json []byte convention.)
	ResumeFrom []byte `json:"resume_from,omitempty"`
}

// SyntheticSpec selects the synthetic scenario's workload: exactly one of
// TaskSet (an inline declarative scenario) or Gen (generator parameters;
// the TaskSet is drawn from stream 2 of Spec.Seed, so a generated run is
// still a pure function of the Spec).
type SyntheticSpec struct {
	TaskSet *workload.TaskSet `json:"taskset,omitempty"`
	Gen     *workload.GenSpec `json:"gen,omitempty"`
}

// ChaosSpec is the fault plan of a chaos run.
type ChaosSpec struct {
	// Seeds is the number of campaign jobs (default 16).
	Seeds int `json:"seeds,omitempty"`
	// Job, when non-nil, replays that single job index instead of the
	// campaign (the failure-replay contract; required for ArtifactTrace).
	Job *int `json:"job,omitempty"`
	// Workers sizes the sweep pool (0 = GOMAXPROCS; never affects
	// results).
	Workers int `json:"workers,omitempty"`
	// Tasks is the application task count per job (default 6).
	Tasks int `json:"tasks,omitempty"`
	// Faults is the fault count per schedule (default 5).
	Faults int `json:"faults,omitempty"`
	// Corrupt includes bookkeeping-corruption faults the oracles must
	// catch (the oracle self-test).
	Corrupt bool `json:"corrupt,omitempty"`
	// Minimize ddmins failing schedules to a minimal repro.
	Minimize bool `json:"minimize,omitempty"`
	// Synthetic, when non-nil, makes every job generate a fresh synthetic
	// task set from its own seed (replacing the built-in chaos application)
	// with fault targets derived from the generated objects.
	Synthetic *workload.GenSpec `json:"synthetic,omitempty"`
}

// ExperimentsSpec selects paper tables and figures.
type ExperimentsSpec struct {
	// Sections lists the experiments to run in order: table1, table2,
	// fig4, fig6, fig7, fig8, a1, a2, a3, speed — or the single section
	// "all".
	Sections []string `json:"sections"`
	// SimTime is the simulated time per Table 2 / speed configuration
	// (default 1s).
	SimTime Duration `json:"simtime,omitempty"`
	// Workers sizes the sweep pool for parallel sections (default 1, the
	// sequential reference; 0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// Stats is the deterministic digest of a run plus its (non-deterministic)
// wall-clock cost. Wall and SimPerWall are the only fields that vary
// between identical runs, and no artifact ever includes them.
type Stats struct {
	Scenario Scenario `json:"scenario"`
	// SimTime is the simulated time covered (summed across chaos jobs).
	SimTime Duration `json:"sim_time"`
	// Wall is the run's wall-clock cost. Non-deterministic.
	Wall Duration `json:"wall"`
	// SimPerWall is the paper's S/R speed measure. Non-deterministic.
	SimPerWall float64 `json:"sim_per_wall"`

	Ticks       uint64 `json:"ticks,omitempty"`
	CtxSwitches uint64 `json:"ctx_switches,omitempty"`
	Preemptions uint64 `json:"preemptions,omitempty"`
	Interrupts  uint64 `json:"interrupts,omitempty"`

	// Activations counts completed task-body activations (synthetic).
	Activations uint64 `json:"activations,omitempty"`

	// Videogame digest.
	Frames uint64 `json:"frames,omitempty"`
	Score  int    `json:"score,omitempty"`
	Bonus  int    `json:"bonus,omitempty"`

	// Chaos digest.
	Jobs     int `json:"jobs,omitempty"`
	Failures int `json:"failures,omitempty"`

	// TraceEvents counts emitted Perfetto events when ArtifactTrace was
	// produced.
	TraceEvents int `json:"trace_events,omitempty"`
	// VCDChanges counts recorded waveform value changes when ArtifactVCD
	// was produced.
	VCDChanges int `json:"vcd_changes,omitempty"`
}

// Result is everything a run produced: the stats digest and the requested
// artifacts, keyed by Artifact* name.
type Result struct {
	Stats     Stats
	Artifacts map[string][]byte
}

// Execute builds and runs the simulation described by spec, observing ctx
// (and spec.Deadline) at every quiescent point. On cancellation it returns
// the partial result alongside the context's cause; on success the result
// carries every requested artifact. Execute buffers everything;
// ExecuteStream is the incremental-sink variant.
func Execute(ctx context.Context, spec Spec) (Result, error) {
	return ExecuteStream(ctx, spec, StreamOptions{})
}

// scenarioArtifacts maps each scenario to the artifact names it can
// produce.
var scenarioArtifacts = map[Scenario]map[string]bool{
	ScenarioVideogame: {
		ArtifactTrace: true, ArtifactMetrics: true, ArtifactGantt: true,
		ArtifactVCD: true, ArtifactDS: true, ArtifactConsole: true,
	},
	ScenarioChaos: {
		ArtifactSummary: true, ArtifactRepro: true, ArtifactTrace: true,
	},
	ScenarioExperiments: {
		ArtifactReport: true, ArtifactVCD: true, ArtifactMetrics: true,
	},
	ScenarioSynthetic: {
		ArtifactTrace: true, ArtifactMetrics: true, ArtifactGantt: true,
		ArtifactTaskSet: true, ArtifactSnapshot: true,
	},
}

// Validate checks that spec is executable — known scenario, artifacts the
// scenario can produce, coherent scenario parameters — without running
// anything. An empty Scenario validates as the default. The job server
// calls this at submission so malformed specs fail with 400 instead of
// occupying a worker.
func Validate(spec Spec) error {
	if spec.Scenario == "" {
		spec.Scenario = ScenarioVideogame
	}
	known := scenarioArtifacts[spec.Scenario]
	if known == nil {
		return fmt.Errorf("run: unknown scenario %q", spec.Scenario)
	}
	for _, a := range spec.Artifacts {
		if !known[a] {
			return fmt.Errorf("run: scenario %q cannot produce artifact %q", spec.Scenario, a)
		}
	}
	switch spec.Engine {
	case "", opts.EngineGoroutine, opts.EngineContinuation:
	default:
		return fmt.Errorf("run: unknown engine %q (want %q or %q)",
			spec.Engine, opts.EngineGoroutine, opts.EngineContinuation)
	}
	if spec.Scenario == ScenarioChaos && wants(spec, ArtifactTrace) &&
		(spec.Chaos == nil || spec.Chaos.Job == nil) {
		return fmt.Errorf("run: chaos artifact %q requires a single-job replay (chaos.job)", ArtifactTrace)
	}
	if spec.Scenario == ScenarioExperiments && spec.Experiments != nil {
		if _, err := expandSections(spec.Experiments.Sections); err != nil {
			return err
		}
	}
	if spec.Synthetic != nil && spec.Scenario != ScenarioSynthetic {
		return fmt.Errorf("run: synthetic workload requires scenario %q, got %q", ScenarioSynthetic, spec.Scenario)
	}
	if spec.Scenario == ScenarioSynthetic {
		syn := spec.Synthetic
		switch {
		case syn == nil && spec.Checkpoint != nil && spec.Checkpoint.ResumeFrom != nil:
			// A resumed run takes its workload from the spec embedded in the
			// snapshot; an inline synthetic field is unnecessary.
		case syn == nil:
			return fmt.Errorf("run: scenario %q requires the synthetic field (taskset or gen)", ScenarioSynthetic)
		case syn.TaskSet != nil && syn.Gen != nil:
			return fmt.Errorf("run: synthetic wants exactly one of taskset and gen, got both")
		case syn.TaskSet != nil:
			if err := syn.TaskSet.Validate(); err != nil {
				return err
			}
		case syn.Gen != nil:
			if err := syn.Gen.Validate(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("run: synthetic wants exactly one of taskset and gen, got neither")
		}
	}
	if spec.Chaos != nil && spec.Chaos.Synthetic != nil {
		if err := spec.Chaos.Synthetic.Validate(); err != nil {
			return err
		}
	}
	if ck := spec.Checkpoint; ck != nil {
		if err := validateCheckpoint(spec, ck); err != nil {
			return err
		}
	} else if wants(spec, ArtifactSnapshot) {
		return fmt.Errorf("run: artifact %q requires checkpoint.at", ArtifactSnapshot)
	}
	if spec.Stream && spec.Checkpoint != nil {
		// Snapshot capture folds the trace buffer into the kernel state; a
		// trace that left through a sink cannot be captured or verified.
		return fmt.Errorf("run: stream and checkpoint are exclusive")
	}
	return nil
}

// validateCheckpoint checks the checkpoint plan against the scenario.
func validateCheckpoint(spec Spec, ck *CheckpointSpec) error {
	switch spec.Scenario {
	case ScenarioSynthetic:
	case ScenarioVideogame:
		// The videogame app roots state in goroutine closures, so only the
		// pause-and-continue form (At) is supported — no capture, fork or
		// resume.
		if ck.ForkSeed != nil || ck.ResumeFrom != nil {
			return fmt.Errorf("run: scenario %q supports only checkpoint.at (fork/resume need scenario %q)",
				spec.Scenario, ScenarioSynthetic)
		}
	default:
		return fmt.Errorf("run: scenario %q does not support checkpoints", spec.Scenario)
	}
	if ck.ResumeFrom != nil {
		if ck.At != 0 {
			return fmt.Errorf("run: checkpoint.at and checkpoint.resume_from are exclusive")
		}
	} else if ck.At <= 0 {
		return fmt.Errorf("run: checkpoint requires at > 0 or resume_from")
	}
	if ck.At != 0 && spec.Dur != 0 && ck.At >= spec.Dur {
		return fmt.Errorf("run: checkpoint.at (%v) must be before dur (%v)", ck.At, spec.Dur)
	}
	if spec.Step {
		return fmt.Errorf("run: checkpoint and step mode are exclusive")
	}
	if wants(spec, ArtifactSnapshot) && ck.ResumeFrom != nil {
		return fmt.Errorf("run: a resumed run cannot produce %q (request it on the capturing run)", ArtifactSnapshot)
	}
	return nil
}

// wants reports whether spec requests the named artifact.
func wants(spec Spec, name string) bool {
	for _, a := range spec.Artifacts {
		if a == name {
			return true
		}
	}
	return false
}

// boolOr reads an optional boolean knob.
func boolOr(p *bool, def bool) bool {
	if p == nil {
		return def
	}
	return *p
}
