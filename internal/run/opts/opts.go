// Package opts holds the construction knobs shared by every kernel-bearing
// Config in the tree (tkernel.Config, rtk.Config, app.Config). It sits below
// the kernel layers so they can embed one struct instead of redeclaring the
// same fields; package run re-exports the type as run.CommonOptions, the
// name client code should use.
package opts

import (
	"repro/internal/event"
	"repro/internal/sysc"
	"repro/internal/trace"
)

// Engine selects the process engine backing T-THREADs. The goroutine
// engine parks each T-THREAD body on its own goroutine (the reference
// implementation); the continuation engine compiles bodies to resumable
// state machines driven inline by the scheduler loop, with zero channel
// operations per context switch. Both produce byte-identical artifacts.
const (
	// EngineGoroutine is the goroutine-per-thread reference engine (the
	// default; also selected by an empty Engine).
	EngineGoroutine = "goroutine"
	// EngineContinuation is the single-goroutine continuation engine.
	EngineContinuation = "continuation"
)

// CommonOptions is the knob set every kernel build shares. Each embedding
// Config documents which fields it honors; a zero value always means "model
// default".
type CommonOptions struct {
	// Engine selects the T-THREAD process engine: EngineGoroutine (default,
	// also the empty string) or EngineContinuation. Builds that compile
	// their bodies onto the program IR honor it; plain closure bodies always
	// run on the goroutine engine.
	Engine string
	// Tick is the system-clock resolution. For tkernel and rtk this is the
	// kernel tick (default 1 ms); for app it sets the BFM real-time clock
	// period driving the kernel's central module.
	Tick sysc.Time
	// TimeSlice is the round-robin quantum where the scheduling policy has
	// one (RTK-Spec I; default 5 ms). Ignored by purely priority-preemptive
	// builds.
	TimeSlice sysc.Time
	// Bus optionally supplies an externally created kernel event bus, so
	// observers (trace exporters, metrics, oracles) can subscribe before
	// the simulation starts. Nil lets the kernel create a private one.
	Bus *event.Bus
	// Gantt, when non-nil, is subscribed to the bus for execution-trace
	// segment recording.
	Gantt *trace.Gantt
}
