package opts

import (
	"encoding/json"
	"time"

	"repro/internal/sysc"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("250ms") and unmarshals from either a string or integer nanoseconds, so
// hand-written JSON specs stay legible. It lives here, below the run façade,
// so pure-data spec packages (run, workload) share one wire representation;
// client code should normally refer to it as run.Duration.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "250ms"-style strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// Std converts to the standard-library representation.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Sim converts to simulated time.
func (d Duration) Sim() sysc.Time {
	return sysc.Time(time.Duration(d).Nanoseconds()) * sysc.Ns
}
