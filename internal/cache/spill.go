package cache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"

	"repro/internal/run"
)

// Spill tier: the disk half of the two-level result cache. Entries evicted
// from the in-memory LRU are written to Config.Dir as one JSON file per
// entry, named "<content-hash>.json". Because the key IS the content hash
// of the canonical spec, the files are self-describing and survive
// restarts: a new server pointed at the same directory serves its
// predecessor's results on first miss. Writes are atomic (temp file +
// fsync + rename) so a crash mid-spill never leaves a torn file under a
// valid name; a file that nevertheless fails to decode is deleted and
// counted, never served.

// spillFile is the on-disk entry format.
type spillFile struct {
	Key       string            `json:"key"`
	Stats     run.Stats         `json:"stats"`
	Artifacts map[string][]byte `json:"artifacts,omitempty"`
}

// keyPat guards the filename against keys that are not plain content
// hashes (defense in depth: the server only ever passes run.Hash output).
var keyPat = regexp.MustCompile(`^[0-9a-f]{16,128}$`)

// spillLocked persists one evicted entry to the spill directory. Caller
// holds c.mu. Errors are counted, not returned: spill is an optimization
// and the entry was already evicted either way.
func (c *Cache) spillLocked(e *entry) {
	if c.dir == "" || !keyPat.MatchString(e.key) {
		return
	}
	body, err := json.Marshal(spillFile{Key: e.key, Stats: e.res.Stats, Artifacts: e.res.Artifacts})
	if err != nil {
		c.diskErrors++
		return
	}
	if err := atomicWrite(filepath.Join(c.dir, e.key+".json"), body); err != nil {
		c.diskErrors++
		return
	}
	c.spills++
}

// reloadLocked tries the spill directory for key and, on success, promotes
// the entry back into the in-memory LRU. Caller holds c.mu.
func (c *Cache) reloadLocked(key string) (run.Result, bool) {
	if c.dir == "" || !keyPat.MatchString(key) {
		return run.Result{}, false
	}
	path := filepath.Join(c.dir, key+".json")
	body, err := os.ReadFile(path)
	if err != nil {
		return run.Result{}, false
	}
	var sf spillFile
	if err := json.Unmarshal(body, &sf); err != nil || sf.Key != key {
		c.diskErrors++
		os.Remove(path)
		return run.Result{}, false
	}
	res := run.Result{Stats: sf.Stats, Artifacts: sf.Artifacts}
	c.diskHits++
	c.insertLocked(key, res)
	return res, true
}

// atomicWrite lands body at path via a same-directory temp file, fsync and
// rename, so readers only ever see complete files.
func atomicWrite(path string, body []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".spill-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(body); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}
