package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// hashKey fabricates a content-hash-shaped key (keyPat requires lowercase
// hex, >= 16 chars — like run.Hash output).
func hashKey(i int) string {
	return fmt.Sprintf("%064x", 0xabc0+i)
}

// TestSpillReloadSameCache: an LRU-evicted entry lands on disk and a later
// miss for it is served from the spill file, re-promoted into memory.
func TestSpillReloadSameCache(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{MaxEntries: 2, Dir: dir})
	for i := 0; i < 3; i++ {
		lead(t, c, hashKey(i), fmt.Sprintf("payload%d", i))
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Spills != 1 {
		t.Fatalf("want 1 eviction + 1 spill, got %+v", st)
	}
	spilled := filepath.Join(dir, hashKey(0)+".json")
	if _, err := os.Stat(spilled); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}

	// Miss on the evicted key is served from disk, no flight opened.
	res, f, _ := c.Begin(hashKey(0))
	if f != nil {
		t.Fatalf("expected disk hit, got a flight")
	}
	if string(res.Artifacts["a.txt"]) != "payload0" {
		t.Fatalf("wrong payload from disk: %q", res.Artifacts["a.txt"])
	}
	st = c.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("want 1 disk hit, got %+v", st)
	}
	// Reload promoted the entry back into memory (evicting another).
	if res2, ok := c.Get(hashKey(0)); !ok || string(res2.Artifacts["a.txt"]) != "payload0" {
		t.Fatalf("promoted entry not in memory")
	}
}

// TestSpillWarmsRestart: a fresh Cache pointed at the predecessor's spill
// directory serves its entries — the restart warm-up path.
func TestSpillWarmsRestart(t *testing.T) {
	dir := t.TempDir()
	old := New(Config{MaxEntries: 1, Dir: dir})
	lead(t, old, hashKey(1), "survivor")
	lead(t, old, hashKey(2), "evictor") // evicts + spills hashKey(1)

	fresh := New(Config{Dir: dir})
	res, ok := fresh.Get(hashKey(1))
	if !ok || string(res.Artifacts["a.txt"]) != "survivor" {
		t.Fatalf("restart miss: ok=%v res=%+v", ok, res)
	}
	if st := fresh.Stats(); st.DiskHits != 1 || st.Entries != 1 {
		t.Fatalf("fresh stats: %+v", st)
	}
}

// TestSpillCorruptFileDeleted: a torn or tampered spill file is deleted and
// counted, never served.
func TestSpillCorruptFileDeleted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, hashKey(3)+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Config{Dir: dir})
	if _, ok := c.Get(hashKey(3)); ok {
		t.Fatalf("corrupt spill file served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt spill file not deleted: %v", err)
	}
	if st := c.Stats(); st.DiskErrors != 1 {
		t.Fatalf("want 1 disk error, got %+v", st)
	}
}

// TestSpillDisabled: without Dir nothing is written and nothing reloads.
func TestSpillDisabled(t *testing.T) {
	c := New(Config{MaxEntries: 1})
	lead(t, c, hashKey(4), "a")
	lead(t, c, hashKey(5), "b")
	if _, ok := c.Get(hashKey(4)); ok {
		t.Fatalf("evicted entry resurrected without a spill dir")
	}
	if st := c.Stats(); st.Spills != 0 || st.DiskHits != 0 {
		t.Fatalf("spill counters moved without a dir: %+v", st)
	}
}

// TestSpillRejectsUnsafeKey: keys that are not content hashes never become
// filenames.
func TestSpillRejectsUnsafeKey(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{MaxEntries: 1, Dir: dir})
	lead(t, c, "../../etc/passwd", "x")
	lead(t, c, hashKey(6), "y") // evicts the unsafe key
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("unsafe key produced a file: %v", ents[0].Name())
	}
}
