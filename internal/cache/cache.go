// Package cache is the fleet's content-addressed result store: a bounded
// LRU of completed run results keyed by canonical Spec hash (run.Hash),
// with in-flight singleflight deduplication. The determinism contract
// (artifacts are pure functions of the Spec) is what makes it sound — a
// cached entry is byte-for-byte the result a fresh simulation would
// produce — and the canonical encoding is what makes it effective: specs
// that spell defaults differently still land on one key.
//
// Two capacity bounds apply independently: MaxEntries caps the record
// count and MaxBytes caps the summed artifact payload; crossing either
// evicts least-recently-used entries. Singleflight is exposed as an
// explicit flight object rather than a blocking Do(fn) call because the
// job server is asynchronous: the leader runs the simulation on a pool
// worker and completes the flight, while followers park on Done() without
// holding a worker.
package cache

import (
	"container/list"
	"sync"

	"repro/internal/run"
)

// Config bounds the cache.
type Config struct {
	// MaxEntries caps the number of cached results (<= 0: 512).
	MaxEntries int
	// MaxBytes caps the summed artifact bytes across entries (<= 0: 256 MiB).
	MaxBytes int64
	// Dir, when non-empty, is the spill directory: entries evicted from the
	// in-memory LRU persist there (one fsync'd JSON file per entry, named by
	// content hash), and misses fall back to it — so a restarted server
	// warms itself from its predecessor's spill, and the effective capacity
	// is the disk, not MaxBytes. Empty disables spill.
	Dir string
}

// DefaultMaxEntries and DefaultMaxBytes are the bounds a zero Config gets.
const (
	DefaultMaxEntries = 512
	DefaultMaxBytes   = 256 << 20
)

// Cache is the bounded content-addressed result store. Safe for
// concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	dir        string
	bytes      int64
	ll         *list.List // front = most recently used
	entries    map[string]*list.Element
	flights    map[string]*Flight

	hits, misses, deduped, evictions uint64
	spills, diskHits, diskErrors     uint64
}

type entry struct {
	key  string
	res  run.Result
	size int64
}

// New builds a cache with the given bounds.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxEntries: cfg.MaxEntries,
		maxBytes:   cfg.MaxBytes,
		dir:        cfg.Dir,
		ll:         list.New(),
		entries:    make(map[string]*list.Element),
		flights:    make(map[string]*Flight),
	}
}

// Flight is one in-flight computation of a key. The leader calls Complete
// exactly once; followers select on Done and then read Result. The result
// run.Result shares artifact byte slices with the cache — callers must
// treat them as immutable (the serving contract already does: artifacts
// are written once and only ever streamed out).
type Flight struct {
	c    *Cache
	key  string
	done chan struct{}
	res  run.Result
	err  error
}

// Done is closed when the leader completes the flight.
func (f *Flight) Done() <-chan struct{} { return f.done }

// Result returns the flight's outcome. Only valid after Done is closed.
func (f *Flight) Result() (run.Result, error) { return f.res, f.err }

// Key returns the content hash the flight computes.
func (f *Flight) Key() string { return f.key }

// Complete resolves the flight: a nil error stores res in the cache, any
// error just wakes the followers with it (failures are never cached — a
// failed run is not a pure function of the Spec, it is a function of
// deadlines and cancellation). Complete must be called exactly once, by
// the leader.
func (f *Flight) Complete(res run.Result, err error) {
	c := f.c
	c.mu.Lock()
	delete(c.flights, f.key)
	if err == nil {
		c.insertLocked(f.key, res)
	}
	c.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}

// Begin is the cache's single entry point: it returns a hit, or joins the
// key's in-flight computation, or opens a new flight with the caller as
// leader.
//
//	res, flight, leader := c.Begin(key)
//	switch {
//	case flight == nil:   // hit: res is the cached result
//	case leader:          // run the simulation, then flight.Complete(...)
//	default:              // follower: <-flight.Done(); flight.Result()
//	}
func (c *Cache) Begin(key string) (res run.Result, f *Flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry).res, nil, false
	}
	if f, ok := c.flights[key]; ok {
		c.deduped++
		return run.Result{}, f, false
	}
	if res, ok := c.reloadLocked(key); ok {
		return res, nil, false
	}
	c.misses++
	f = &Flight{c: c, key: key, done: make(chan struct{})}
	c.flights[key] = f
	return run.Result{}, f, true
}

// Put stores a completed result under key without a flight. The streaming
// serving path uses it: a streamed job bypasses singleflight (every live
// feed needs its own run) but still publishes its materialized result on
// completion, so later buffered submissions of the same spec hit.
func (c *Cache) Put(key string, res run.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, res)
}

// Get returns the cached result for key without opening a flight.
func (c *Cache) Get(key string) (run.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return c.reloadLocked(key)
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).res, true
}

// insertLocked stores res under key and evicts LRU entries past either
// bound. Caller holds c.mu.
func (c *Cache) insertLocked(key string, res run.Result) {
	if el, ok := c.entries[key]; ok {
		// Another leader raced us here (possible only if a flight was
		// completed while a second one ran uncached); keep the existing
		// entry — determinism makes them identical anyway.
		c.ll.MoveToFront(el)
		return
	}
	e := &entry{key: key, res: res, size: resultSize(res)}
	c.entries[key] = c.ll.PushFront(e)
	c.bytes += e.size
	for (len(c.entries) > c.maxEntries || c.bytes > c.maxBytes) && c.ll.Len() > 1 {
		c.evictOldestLocked()
	}
}

func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
	c.evictions++
	c.spillLocked(e)
}

// resultSize is the accounting weight of one result: artifact payload
// plus a small fixed overhead per entry.
func resultSize(res run.Result) int64 {
	const overhead = 512
	n := int64(overhead)
	for name, b := range res.Artifacts {
		n += int64(len(name)) + int64(len(b))
	}
	return n
}

// Stats is a snapshot of the cache's counters and occupancy.
type Stats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Deduped   uint64 `json:"deduped"`
	Evictions uint64 `json:"evictions"`
	InFlight  int    `json:"in_flight"`
	// Spill-tier counters (zero when Config.Dir is unset).
	Spills     uint64 `json:"spills,omitempty"`
	DiskHits   uint64 `json:"disk_hits,omitempty"`
	DiskErrors uint64 `json:"disk_errors,omitempty"`
}

// Stats returns a consistent snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:    len(c.entries),
		Bytes:      c.bytes,
		Hits:       c.hits,
		Misses:     c.misses,
		Deduped:    c.deduped,
		Evictions:  c.evictions,
		InFlight:   len(c.flights),
		Spills:     c.spills,
		DiskHits:   c.diskHits,
		DiskErrors: c.diskErrors,
	}
}
