package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/run"
)

func result(payload string) run.Result {
	return run.Result{
		Stats:     run.Stats{Scenario: run.ScenarioVideogame},
		Artifacts: map[string][]byte{"a.txt": []byte(payload)},
	}
}

// lead opens a flight for key (asserting leadership) and completes it.
func lead(t *testing.T, c *Cache, key, payload string) {
	t.Helper()
	_, f, leader := c.Begin(key)
	if f == nil || !leader {
		t.Fatalf("expected to lead %q", key)
	}
	f.Complete(result(payload), nil)
}

// TestHitAfterComplete: a completed flight is a hit for the next Begin.
func TestHitAfterComplete(t *testing.T) {
	c := New(Config{})
	lead(t, c, "k1", "hello")

	res, f, _ := c.Begin("k1")
	if f != nil {
		t.Fatal("expected a hit, got a flight")
	}
	if string(res.Artifacts["a.txt"]) != "hello" {
		t.Fatalf("wrong artifact: %q", res.Artifacts["a.txt"])
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestFailureNotCached: a flight completed with an error wakes followers
// but stores nothing.
func TestFailureNotCached(t *testing.T) {
	c := New(Config{})
	_, f, leader := c.Begin("k")
	if !leader {
		t.Fatal("not leader")
	}
	f.Complete(run.Result{}, errors.New("boom"))
	<-f.Done()
	if _, err := f.Result(); err == nil {
		t.Fatal("error lost")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failure was cached")
	}
	// The key is retryable: the next Begin leads a fresh flight.
	if _, _, leader := c.Begin("k"); !leader {
		t.Fatal("retry did not lead")
	}
}

// TestSingleflight: N concurrent Begins on one key elect exactly one
// leader, and every follower observes the leader's result.
func TestSingleflight(t *testing.T) {
	c := New(Config{})
	const n = 64
	var leaders, followers atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, f, leader := c.Begin("k")
			switch {
			case f == nil:
				// Late arrival after completion: a hit is fine too.
				followers.Add(1)
			case leader:
				leaders.Add(1)
				f.Complete(result("once"), nil)
				res, _ = f.Result()
			default:
				followers.Add(1)
				<-f.Done()
				res, _ = f.Result()
			}
			if string(res.Artifacts["a.txt"]) != "once" {
				t.Errorf("wrong result: %v", res.Artifacts)
			}
		}()
	}
	close(start)
	wg.Wait()
	if leaders.Load() != 1 || followers.Load() != n-1 {
		t.Fatalf("leaders=%d followers=%d", leaders.Load(), followers.Load())
	}
}

// TestEvictByEntries: the entry bound evicts least-recently-used first.
func TestEvictByEntries(t *testing.T) {
	c := New(Config{MaxEntries: 3, MaxBytes: 1 << 30})
	for i := 0; i < 3; i++ {
		lead(t, c, fmt.Sprintf("k%d", i), "x")
	}
	// Touch k0 so k1 is now the LRU victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	lead(t, c, "k3", "x")
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestEvictByBytes: the byte bound evicts even when the entry bound has
// room, but always keeps the newest entry.
func TestEvictByBytes(t *testing.T) {
	c := New(Config{MaxEntries: 100, MaxBytes: 3000})
	for i := 0; i < 4; i++ {
		lead(t, c, fmt.Sprintf("k%d", i), string(make([]byte, 1000)))
	}
	st := c.Stats()
	if st.Bytes > 3000 {
		t.Fatalf("over byte budget: %+v", st)
	}
	if st.Entries == 0 {
		t.Fatal("newest entry evicted")
	}
	if _, ok := c.Get("k3"); !ok {
		t.Fatal("newest entry k3 missing")
	}
}

// TestDedupedCounter: followers joining a live flight are counted.
func TestDedupedCounter(t *testing.T) {
	c := New(Config{})
	_, f, _ := c.Begin("k")
	for i := 0; i < 5; i++ {
		if _, ff, leader := c.Begin("k"); leader || ff != f {
			t.Fatal("expected to join the live flight")
		}
	}
	f.Complete(result("x"), nil)
	if st := c.Stats(); st.Deduped != 5 || st.InFlight != 0 {
		t.Fatalf("stats: %+v", st)
	}
}
