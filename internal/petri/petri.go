// Package petri implements the synchronized Petri-net semantics that the
// paper uses as the execution model of a T-THREAD (Figure 2): a net of
// places and atomic transitions, a token marking the thread state, firing
// sequences with characteristic vectors, and execution-time/energy models
// (ETM/EEM) attached to transitions so that consumed execution time (CET)
// and consumed execution energy (CEE) accumulate as the token propagates.
package petri

import (
	"fmt"

	"repro/internal/sysc"
)

// Energy is an amount of energy in joules.
type Energy float64

// Energy constructors/conversions.
const (
	Joule         Energy = 1
	MilliJ        Energy = 1e-3
	MicroJ        Energy = 1e-6
	NanoJ         Energy = 1e-9
	WattHour      Energy = 3600 * Joule
	MilliWattHour Energy = 3.6 * Joule
)

// Joules returns e as a float in joules.
func (e Energy) Joules() float64 { return float64(e) }

// WattHours returns e converted to watt-hours.
func (e Energy) WattHours() float64 { return float64(e) / float64(WattHour) }

// String renders the energy with an adaptive unit.
func (e Energy) String() string {
	v := float64(e)
	switch {
	case v == 0:
		return "0 J"
	case v >= 1:
		return fmt.Sprintf("%.3f J", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.3f mJ", v*1e3)
	case v >= 1e-6:
		return fmt.Sprintf("%.3f uJ", v*1e6)
	default:
		return fmt.Sprintf("%.3f nJ", v*1e9)
	}
}

// Cost is the execution time/energy model attached to one transition firing:
// the ETM contribution and EEM contribution of that atomic step.
type Cost struct {
	Time   sysc.Time
	Energy Energy
}

// Add returns the component-wise sum of two costs.
func (c Cost) Add(d Cost) Cost {
	return Cost{Time: c.Time + d.Time, Energy: c.Energy + d.Energy}
}

// Scale returns the cost scaled by a fraction in [0,1] (used when a firing
// is preempted partway: time and energy are charged pro rata).
func (c Cost) Scale(f float64) Cost {
	return Cost{
		Time:   sysc.Time(float64(c.Time) * f),
		Energy: Energy(float64(c.Energy) * f),
	}
}

// Place is a PN place. Its token count is the marking component.
type Place struct {
	ID     int
	Name   string
	Tokens int
}

// Transition is an atomic PN transition with input and output places and an
// attached cost model.
type Transition struct {
	ID      int
	Name    string
	Inputs  []*Place
	Outputs []*Place
	Cost    Cost
}

// Net is a Petri net. The nets used for T-THREADs are state machines (each
// transition has exactly one input and one output place) carrying a single
// token, but the package supports general nets.
type Net struct {
	Name        string
	Places      []*Place
	Transitions []*Transition
}

// New creates an empty net.
func New(name string) *Net { return &Net{Name: name} }

// AddPlace appends a place with the given initial marking.
func (n *Net) AddPlace(name string, tokens int) *Place {
	p := &Place{ID: len(n.Places), Name: name, Tokens: tokens}
	n.Places = append(n.Places, p)
	return p
}

// AddTransition appends a transition connecting inputs to outputs.
func (n *Net) AddTransition(name string, cost Cost, inputs, outputs []*Place) *Transition {
	t := &Transition{ID: len(n.Transitions), Name: name, Cost: cost,
		Inputs: inputs, Outputs: outputs}
	n.Transitions = append(n.Transitions, t)
	return t
}

// Enabled reports whether t can fire under the current marking: every input
// place holds at least one token.
func (n *Net) Enabled(t *Transition) bool {
	for _, p := range t.Inputs {
		if p.Tokens < 1 {
			return false
		}
	}
	return true
}

// Fire consumes one token from each input place and produces one token in
// each output place. It fails if the transition is not enabled.
func (n *Net) Fire(t *Transition) error {
	if !n.Enabled(t) {
		return fmt.Errorf("petri: transition %q not enabled in net %q", t.Name, n.Name)
	}
	for _, p := range t.Inputs {
		p.Tokens--
	}
	for _, p := range t.Outputs {
		p.Tokens++
	}
	return nil
}

// Marking returns the current token count of every place, indexed by place ID.
func (n *Net) Marking() []int {
	m := make([]int, len(n.Places))
	for i, p := range n.Places {
		m[i] = p.Tokens
	}
	return m
}

// TotalTokens returns the sum of all tokens (conserved for state machines).
func (n *Net) TotalTokens() int {
	sum := 0
	for _, p := range n.Places {
		sum += p.Tokens
	}
	return sum
}

// EnabledTransitions returns the transitions currently enabled, in ID order.
func (n *Net) EnabledTransitions() []*Transition {
	var out []*Transition
	for _, t := range n.Transitions {
		if n.Enabled(t) {
			out = append(out, t)
		}
	}
	return out
}

// IsStateMachine reports whether every transition has exactly one input and
// one output place — the shape of a T-THREAD cycle, where the single token
// marks the thread state.
func (n *Net) IsStateMachine() bool {
	for _, t := range n.Transitions {
		if len(t.Inputs) != 1 || len(t.Outputs) != 1 {
			return false
		}
	}
	return true
}

// Arc describes one state-machine transition for NewStateMachine: a named
// transition moving the token from place index In to place index Out.
type Arc struct {
	Name    string
	In, Out int
}

// NewStateMachine bulk-builds a single-token state-machine net: one place per
// name with the token on places[initial], and one zero-cost transition per
// arc. Unlike AddPlace/AddTransition it allocates a fixed handful of backing
// arrays, which matters because a T-THREAD net is built per thread and net
// construction otherwise dominates model build time.
func NewStateMachine(name string, places []string, initial int, arcs []Arc) *Net {
	ps := make([]Place, len(places))
	pp := make([]*Place, len(places))
	for i, pn := range places {
		ps[i] = Place{ID: i, Name: pn}
		pp[i] = &ps[i]
	}
	if initial >= 0 && initial < len(ps) {
		ps[initial].Tokens = 1
	}
	ts := make([]Transition, len(arcs))
	tp := make([]*Transition, len(arcs))
	ends := make([]*Place, 2*len(arcs))
	for i, a := range arcs {
		ends[2*i], ends[2*i+1] = pp[a.In], pp[a.Out]
		ts[i] = Transition{ID: i, Name: a.Name,
			Inputs:  ends[2*i : 2*i+1 : 2*i+1],
			Outputs: ends[2*i+1 : 2*i+2 : 2*i+2],
		}
		tp[i] = &ts[i]
	}
	return &Net{Name: name, Places: pp, Transitions: tp}
}

// NewCycle builds the cyclic state-machine net of a T-THREAD (Figure 2): one
// place per stage name, transitions stage(i) -> stage(i+1 mod N), and a
// single token on the first place. Costs default to zero and are assigned
// per firing by the executor.
func NewCycle(name string, stages ...string) *Net {
	n := New(name)
	for _, s := range stages {
		n.AddPlace(s, 0)
	}
	if len(n.Places) > 0 {
		n.Places[0].Tokens = 1
	}
	for i := range n.Places {
		next := (i + 1) % len(n.Places)
		n.AddTransition(
			fmt.Sprintf("T%d:%s->%s", i, n.Places[i].Name, n.Places[next].Name),
			Cost{},
			[]*Place{n.Places[i]}, []*Place{n.Places[next]},
		)
	}
	return n
}
