package petri

import "repro/internal/sysc"

// FiringSequence summarizes the transitions fired during one execution cycle
// of a T-THREAD. Its characteristic vector S̄ counts how many times each
// transition fired; the attached ETM/EEM sums give the sequence's execution
// time and energy. Only the counts are kept — the ordered firing list is not
// materialized, so a cycle of any length records in O(1) space.
type FiringSequence struct {
	net    *Net
	n      int
	counts []int
	total  Cost
}

// NewFiringSequence creates an empty sequence over the given net.
func NewFiringSequence(n *Net) *FiringSequence {
	return &FiringSequence{net: n, counts: make([]int, len(n.Transitions))}
}

// Record notes that t fired with the given (possibly preemption-scaled)
// cost. The cost may differ from t.Cost when the executor charges pro rata.
func (s *FiringSequence) Record(t *Transition, cost Cost) {
	s.n++
	if t.ID < len(s.counts) {
		s.counts[t.ID]++
	}
	s.total = s.total.Add(cost)
}

// Len returns the number of firings recorded.
func (s *FiringSequence) Len() int { return s.n }

// CharacteristicVector returns S̄: element i is the number of times
// transition i fired in the sequence.
func (s *FiringSequence) CharacteristicVector() []int {
	return s.AppendCharacteristicVector(nil)
}

// AppendCharacteristicVector writes S̄ into dst, reusing its capacity, and
// returns the result. Per-cycle bookkeeping snapshots the vector through
// this so a T-THREAD's steady state does not allocate after the first
// execution cycle (on either process engine).
func (s *FiringSequence) AppendCharacteristicVector(dst []int) []int {
	return append(dst[:0], s.counts...)
}

// ETM returns the execution-time model value of the sequence.
func (s *FiringSequence) ETM() sysc.Time { return s.total.Time }

// EEM returns the execution-energy model value of the sequence.
func (s *FiringSequence) EEM() Energy { return s.total.Energy }

// Total returns the combined cost of the sequence.
func (s *FiringSequence) Total() Cost { return s.total }

// Reset clears the sequence for the next execution cycle while keeping the
// net binding.
func (s *FiringSequence) Reset() {
	s.n = 0
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.total = Cost{}
}

// Accumulator folds firing sequences over multiple T-THREAD cycles into the
// consumed execution time (CET) and consumed execution energy (CEE):
//
//	CET = Σ_cycles ETM(S | T-THREAD)
//	CEE = Σ_cycles EEM(S | T-THREAD)
type Accumulator struct {
	Cycles int
	CET    sysc.Time
	CEE    Energy
}

// AddCycle folds one completed firing sequence into the accumulator.
func (a *Accumulator) AddCycle(s *FiringSequence) {
	a.Cycles++
	a.CET += s.ETM()
	a.CEE += s.EEM()
}

// AddCost folds a bare cost (used for costs charged outside a recorded
// sequence, e.g. partial firings at preemption points).
func (a *Accumulator) AddCost(c Cost) {
	a.CET += c.Time
	a.CEE += c.Energy
}
