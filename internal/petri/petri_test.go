package petri

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sysc"
)

func TestEnergyString(t *testing.T) {
	cases := []struct {
		in   Energy
		want string
	}{
		{0, "0 J"},
		{2 * Joule, "2.000 J"},
		{5 * MilliJ, "5.000 mJ"},
		{7 * MicroJ, "7.000 uJ"},
		{9 * NanoJ, "9.000 nJ"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Energy(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestEnergyConversions(t *testing.T) {
	if WattHour.Joules() != 3600 {
		t.Errorf("WattHour = %v J", WattHour.Joules())
	}
	if (10 * WattHour).WattHours() != 10 {
		t.Errorf("WattHours: got %v", (10 * WattHour).WattHours())
	}
}

func TestCostAddScale(t *testing.T) {
	c := Cost{Time: 10 * sysc.Ms, Energy: 4 * MilliJ}
	d := c.Add(Cost{Time: 5 * sysc.Ms, Energy: 1 * MilliJ})
	if d.Time != 15*sysc.Ms || d.Energy != 5*MilliJ {
		t.Fatalf("Add = %+v", d)
	}
	h := c.Scale(0.5)
	if h.Time != 5*sysc.Ms || h.Energy != 2*MilliJ {
		t.Fatalf("Scale = %+v", h)
	}
}

func TestFireMovesToken(t *testing.T) {
	n := New("t")
	a := n.AddPlace("a", 1)
	b := n.AddPlace("b", 0)
	tr := n.AddTransition("a->b", Cost{}, []*Place{a}, []*Place{b})
	if !n.Enabled(tr) {
		t.Fatal("transition should be enabled")
	}
	if err := n.Fire(tr); err != nil {
		t.Fatal(err)
	}
	if a.Tokens != 0 || b.Tokens != 1 {
		t.Fatalf("marking = %v", n.Marking())
	}
	if n.Enabled(tr) {
		t.Fatal("transition should be disabled after firing")
	}
	if err := n.Fire(tr); err == nil {
		t.Fatal("firing disabled transition should fail")
	}
}

func TestCycleNetShape(t *testing.T) {
	n := NewCycle("tthread", "startup", "run", "wait")
	if len(n.Places) != 3 || len(n.Transitions) != 3 {
		t.Fatalf("places=%d transitions=%d", len(n.Places), len(n.Transitions))
	}
	if !n.IsStateMachine() {
		t.Fatal("cycle should be a state machine")
	}
	if n.TotalTokens() != 1 {
		t.Fatalf("tokens = %d, want 1", n.TotalTokens())
	}
	// Token walks the cycle and returns to the start.
	for i := 0; i < 3; i++ {
		en := n.EnabledTransitions()
		if len(en) != 1 {
			t.Fatalf("step %d: %d enabled transitions", i, len(en))
		}
		if err := n.Fire(en[0]); err != nil {
			t.Fatal(err)
		}
	}
	if n.Places[0].Tokens != 1 {
		t.Fatal("token did not complete the cycle")
	}
}

func TestFiringSequenceCharacteristicVector(t *testing.T) {
	n := NewCycle("x", "p0", "p1")
	seq := NewFiringSequence(n)
	c := Cost{Time: 2 * sysc.Ms, Energy: 1 * MilliJ}
	for i := 0; i < 4; i++ {
		en := n.EnabledTransitions()[0]
		if err := n.Fire(en); err != nil {
			t.Fatal(err)
		}
		seq.Record(en, c)
	}
	cv := seq.CharacteristicVector()
	if cv[0] != 2 || cv[1] != 2 {
		t.Fatalf("characteristic vector = %v, want [2 2]", cv)
	}
	if seq.Len() != 4 {
		t.Fatalf("len = %d", seq.Len())
	}
	if seq.ETM() != 8*sysc.Ms || seq.EEM() != 4*MilliJ {
		t.Fatalf("ETM=%v EEM=%v", seq.ETM(), seq.EEM())
	}
	seq.Reset()
	if seq.Len() != 0 || seq.ETM() != 0 || seq.EEM() != 0 {
		t.Fatal("reset did not clear sequence")
	}
	if cv2 := seq.CharacteristicVector(); cv2[0] != 0 {
		t.Fatal("reset did not clear counts")
	}
}

func TestAccumulatorCETCEE(t *testing.T) {
	n := NewCycle("x", "p0", "p1")
	var acc Accumulator
	for cycle := 0; cycle < 3; cycle++ {
		seq := NewFiringSequence(n)
		for i := 0; i < 2; i++ {
			en := n.EnabledTransitions()[0]
			_ = n.Fire(en)
			seq.Record(en, Cost{Time: sysc.Ms, Energy: MicroJ})
		}
		acc.AddCycle(seq)
	}
	if acc.Cycles != 3 {
		t.Fatalf("cycles = %d", acc.Cycles)
	}
	if acc.CET != 6*sysc.Ms {
		t.Fatalf("CET = %v", acc.CET)
	}
	if acc.CEE != 6*MicroJ {
		t.Fatalf("CEE = %v", acc.CEE)
	}
	acc.AddCost(Cost{Time: sysc.Ms, Energy: MicroJ})
	if acc.CET != 7*sysc.Ms || acc.Cycles != 3 {
		t.Fatal("AddCost should not bump cycle count")
	}
}

// Property: in a state-machine net with a single token, the total token
// count is invariant under any sequence of enabled firings.
func TestPropertyTokenConservation(t *testing.T) {
	f := func(seed int64, stages uint8, steps uint8) bool {
		ns := int(stages%8) + 2
		names := make([]string, ns)
		for i := range names {
			names[i] = "p"
		}
		n := NewCycle("prop", names...)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(steps); i++ {
			en := n.EnabledTransitions()
			if len(en) == 0 {
				return false // single-token cycle always has one enabled
			}
			tr := en[rng.Intn(len(en))]
			if err := n.Fire(tr); err != nil {
				return false
			}
			if n.TotalTokens() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the characteristic vector counts sum to the sequence length and
// the total cost equals firings × per-firing cost when uniform.
func TestPropertyCharacteristicVectorSum(t *testing.T) {
	f := func(steps uint8) bool {
		n := NewCycle("prop", "a", "b", "c")
		seq := NewFiringSequence(n)
		c := Cost{Time: sysc.Us, Energy: NanoJ}
		for i := 0; i < int(steps); i++ {
			en := n.EnabledTransitions()[0]
			if err := n.Fire(en); err != nil {
				return false
			}
			seq.Record(en, c)
		}
		sum := 0
		for _, v := range seq.CharacteristicVector() {
			sum += v
		}
		eemErr := math.Abs(float64(seq.EEM() - Energy(steps)*NanoJ))
		return sum == int(steps) &&
			seq.ETM() == sysc.Time(steps)*sysc.Us &&
			eemErr < 1e-15 // float accumulation tolerance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralNetNotStateMachine(t *testing.T) {
	n := New("fork")
	a := n.AddPlace("a", 1)
	b := n.AddPlace("b", 0)
	c := n.AddPlace("c", 0)
	n.AddTransition("fork", Cost{}, []*Place{a}, []*Place{b, c})
	if n.IsStateMachine() {
		t.Fatal("fork net misclassified as state machine")
	}
	if err := n.Fire(n.Transitions[0]); err != nil {
		t.Fatal(err)
	}
	if n.TotalTokens() != 2 {
		t.Fatalf("fork should produce 2 tokens, got %d", n.TotalTokens())
	}
}

// TestNewStateMachineEquivalent asserts the bulk constructor builds the same
// net as the incremental AddPlace/AddTransition sequence.
func TestNewStateMachineEquivalent(t *testing.T) {
	places := []string{"a", "b", "c"}
	arcs := []Arc{{Name: "t0", In: 0, Out: 1}, {Name: "t1", In: 1, Out: 2}, {Name: "self", In: 2, Out: 2}}
	got := NewStateMachine("sm", places, 0, arcs)

	want := New("sm")
	for i, p := range places {
		tok := 0
		if i == 0 {
			tok = 1
		}
		want.AddPlace(p, tok)
	}
	for _, a := range arcs {
		want.AddTransition(a.Name, Cost{}, []*Place{want.Places[a.In]}, []*Place{want.Places[a.Out]})
	}

	if len(got.Places) != len(want.Places) || len(got.Transitions) != len(want.Transitions) {
		t.Fatalf("sizes: %d/%d places, %d/%d transitions",
			len(got.Places), len(want.Places), len(got.Transitions), len(want.Transitions))
	}
	for i := range got.Places {
		g, w := got.Places[i], want.Places[i]
		if g.ID != w.ID || g.Name != w.Name || g.Tokens != w.Tokens {
			t.Fatalf("place %d: %+v vs %+v", i, g, w)
		}
	}
	for i := range got.Transitions {
		g, w := got.Transitions[i], want.Transitions[i]
		if g.ID != w.ID || g.Name != w.Name || g.Cost != w.Cost {
			t.Fatalf("transition %d: %+v vs %+v", i, g, w)
		}
		if len(g.Inputs) != 1 || len(g.Outputs) != 1 ||
			g.Inputs[0].ID != w.Inputs[0].ID || g.Outputs[0].ID != w.Outputs[0].ID {
			t.Fatalf("transition %d arcs differ", i)
		}
	}
	if !got.IsStateMachine() {
		t.Fatal("not a state machine")
	}
	// Firing through the bulk-built net moves the single token identically.
	for _, tr := range got.Transitions {
		if got.Enabled(tr) {
			if err := got.Fire(tr); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if m := got.Marking(); m[0] != 0 || m[1] != 1 || m[2] != 0 {
		t.Fatalf("marking after t0 = %v", m)
	}
}
