package petri

import "fmt"

// Snapshot-layer accessors. A T-THREAD's Petri net and firing sequence are
// part of the kernel's dynamic state: the token marking encodes the thread
// state the paper's Figure 2 models, and the in-flight firing sequence
// carries the partial characteristic vector of the current execution
// cycle. Both are plain counters, so capture is a value copy and restore
// writes the counters back into the same net/sequence objects.

// SequenceState is the captured dynamic state of a FiringSequence.
type SequenceState struct {
	N      int
	Counts []int
	Total  Cost
}

// SaveState captures the sequence's dynamic state.
func (s *FiringSequence) SaveState() SequenceState {
	return SequenceState{
		N:      s.n,
		Counts: append([]int(nil), s.counts...),
		Total:  s.total,
	}
}

// LoadState restores a state captured from this sequence (or one over a
// net with the same transition count).
func (s *FiringSequence) LoadState(st SequenceState) error {
	if len(st.Counts) != len(s.counts) {
		return fmt.Errorf("petri: sequence state has %d transition counts, net %q has %d",
			len(st.Counts), s.net.Name, len(s.counts))
	}
	s.n = st.N
	copy(s.counts, st.Counts)
	s.total = st.Total
	return nil
}

// SetMarking writes a marking captured via Marking back into the net.
func (n *Net) SetMarking(m []int) error {
	if len(m) != len(n.Places) {
		return fmt.Errorf("petri: marking has %d places, net %q has %d",
			len(m), n.Name, len(n.Places))
	}
	for i, p := range n.Places {
		p.Tokens = m[i]
	}
	return nil
}
